//! The single-global-model baselines: FedAvg, FedProx, FedNova.
//!
//! All three share the FedAvg skeleton (sample → local train → aggregate)
//! and differ only in the local objective (FedProx's proximal term) or the
//! aggregation rule (FedNova's normalised averaging).

use crate::checkpoint::{
    check_len, run_without_checkpoints, Checkpoint, CheckpointError, Checkpointer, MethodState,
};
use crate::config::FlConfig;
use crate::engine::{
    average_accuracy, evaluate_clients, init_model, sample_clients, train_round, weighted_average,
};
use crate::faults::Transport;
use crate::methods::FlMethod;
use crate::metrics::{RoundRecord, RunResult};
use fedclust_data::FederatedDataset;

/// Which member of the FedAvg family to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalVariant {
    /// Plain FedAvg.
    FedAvg,
    /// FedProx with proximal coefficient μ.
    FedProx {
        /// Proximal coefficient.
        mu: f32,
    },
    /// FedNova normalised averaging.
    FedNova,
}
use GlobalVariant as Variant;

/// Vanilla FedAvg (McMahan et al. 2017).
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg;

/// FedProx (Li et al. 2020): FedAvg with a proximal term μ/2·‖w − w_g‖² in
/// every client's local objective.
#[derive(Debug, Clone, Copy)]
pub struct FedProx {
    /// Proximal coefficient μ.
    pub mu: f32,
}

impl Default for FedProx {
    fn default() -> Self {
        FedProx { mu: 0.01 }
    }
}

/// FedNova (Wang et al. 2020): normalises each client's cumulative update
/// by its local step count τ_i before averaging, removing objective
/// inconsistency when clients take different numbers of steps.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedNova;

impl FlMethod for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }
    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        run_without_checkpoints(|ckpt| self.run_resumable(fd, cfg, ckpt))
    }
    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        run_global(Variant::FedAvg, self.name(), fd, cfg, ckpt)
    }
}

impl FlMethod for FedProx {
    fn name(&self) -> &'static str {
        "FedProx"
    }
    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        run_without_checkpoints(|ckpt| self.run_resumable(fd, cfg, ckpt))
    }
    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        run_global(Variant::FedProx { mu: self.mu }, self.name(), fd, cfg, ckpt)
    }
}

impl FlMethod for FedNova {
    fn name(&self) -> &'static str {
        "FedNova"
    }
    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        run_without_checkpoints(|ckpt| self.run_resumable(fd, cfg, ckpt))
    }
    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        run_global(Variant::FedNova, self.name(), fd, cfg, ckpt)
    }
}

fn run_global(
    variant: Variant,
    name: &str,
    fd: &FederatedDataset,
    cfg: &FlConfig,
    ckpt: &mut Checkpointer,
) -> Result<RunResult, CheckpointError> {
    let template = init_model(fd, cfg);
    let state_len = template.state_len();
    let num_params = template.num_params();
    let mut global = template.state_vec();
    let mut transport = Transport::new(cfg);
    let mut history = Vec::new();
    let mut start_round = 0;

    if let Some(cp) = ckpt.resume_point(name, cfg.seed)? {
        let MethodState::Global { state } = cp.state else {
            return Err(CheckpointError::WrongState(format!(
                "{} cannot resume from a {} checkpoint",
                name,
                cp.state.kind()
            )));
        };
        check_len("global state", state.len(), state_len)?;
        global = state;
        start_round = cp.next_round;
        history = cp.history;
        transport.restore_comm_state(cp.meter, cp.telemetry, cp.residuals);
    }

    for round in start_round..cfg.rounds {
        let sampled = sample_clients(fd.num_clients(), cfg, round);
        let prox = match variant {
            Variant::FedProx { mu } => Some(mu),
            _ => None,
        };
        let updates = train_round(
            fd,
            cfg,
            &template,
            &global,
            &sampled,
            round,
            prox,
            &mut transport,
        );

        global = aggregate(variant, &global, &updates, num_params, state_len);

        if cfg.should_eval(round) {
            let per_client = evaluate_clients(fd, &template, |_| &global[..]);
            history.push(RoundRecord {
                round: round + 1,
                avg_acc: average_accuracy(&per_client),
                cum_mb: transport.meter().total_mb(),
            });
        }

        ckpt.on_round_end(round, || Checkpoint {
            method: name.to_string(),
            seed: cfg.seed,
            next_round: round + 1,
            meter: transport.meter().clone(),
            telemetry: transport.telemetry(),
            history: history.clone(),
            state: MethodState::Global {
                state: global.clone(),
            },
            residuals: transport.codec_residuals(),
        })?;
    }

    let per_client_acc = evaluate_clients(fd, &template, |_| &global[..]);
    Ok(RunResult {
        method: name.to_string(),
        final_acc: average_accuracy(&per_client_acc),
        per_client_acc,
        history,
        num_clusters: Some(1),
        total_mb: transport.meter().total_mb(),
        faults: transport.telemetry(),
    })
}

/// The final global state of a FedAvg-family run (used by the newcomer
/// experiment, which hands the global model to unseen clients).
pub fn train_global_model(
    fd: &FederatedDataset,
    cfg: &FlConfig,
    variant: GlobalVariant,
) -> Vec<f32> {
    let template = init_model(fd, cfg);
    let num_params = template.num_params();
    let state_len = template.state_len();
    let mut global = template.state_vec();
    let mut transport = Transport::new(cfg);
    let prox = match variant {
        Variant::FedProx { mu } => Some(mu),
        _ => None,
    };
    for round in 0..cfg.rounds {
        let sampled = sample_clients(fd.num_clients(), cfg, round);
        let updates = train_round(
            fd,
            cfg,
            &template,
            &global,
            &sampled,
            round,
            prox,
            &mut transport,
        );
        global = aggregate(variant, &global, &updates, num_params, state_len);
    }
    global
}

/// Apply one round's aggregation rule to the global state.
fn aggregate(
    variant: GlobalVariant,
    global: &[f32],
    updates: &[crate::engine::ClientUpdate],
    num_params: usize,
    state_len: usize,
) -> Vec<f32> {
    if updates.is_empty() {
        // Every update was lost or quarantined: carry the model forward.
        return global.to_vec();
    }
    match variant {
        Variant::FedAvg | Variant::FedProx { .. } => {
            let items: Vec<(&[f32], f32)> = updates
                .iter()
                .map(|u| (u.state.as_slice(), u.weight))
                .collect();
            weighted_average(&items)
        }
        Variant::FedNova => {
            // Normalised averaging over the *parameter* part:
            //   th <- th - tau_eff * sum p_i (th - th_i)/tau_i,
            // with p_i = n_i/sum n and tau_eff = sum p_i tau_i. The extra
            // state (batch-norm statistics) has no step-count semantics and
            // is plainly weight-averaged.
            let mut out = global.to_vec();
            let total_w: f64 = updates.iter().map(|u| u.weight as f64).sum();
            let tau_eff: f64 = updates
                .iter()
                .map(|u| (u.weight as f64 / total_w) * u.steps as f64)
                .sum();
            let mut direction = vec![0.0f64; num_params];
            for u in updates {
                let p = u.weight as f64 / total_w;
                let tau = (u.steps as f64).max(1.0);
                for (d, (g, l)) in direction
                    .iter_mut()
                    .zip(global[..num_params].iter().zip(&u.state[..num_params]))
                {
                    *d += p * ((*g as f64) - (*l as f64)) / tau;
                }
            }
            for (g, d) in out[..num_params].iter_mut().zip(&direction) {
                *g = ((*g as f64) - tau_eff * d) as f32;
            }
            if state_len > num_params {
                let items: Vec<(&[f32], f32)> = updates
                    .iter()
                    .map(|u| (&u.state[num_params..], u.weight))
                    .collect();
                let extra = weighted_average(&items);
                out[num_params..].copy_from_slice(&extra);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_data::{DatasetProfile, FederatedDataset, Partition};

    fn tiny_fd(seed: u64, skew: f32) -> FederatedDataset {
        FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: skew },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 6,
                samples_per_class: 40,
                train_fraction: 0.8,
                seed,
            },
        )
    }

    #[test]
    fn fedavg_improves_over_random_init() {
        let fd = tiny_fd(0, 0.5);
        let mut cfg = FlConfig::tiny(0);
        cfg.rounds = 5;
        let result = FedAvg.run(&fd, &cfg);
        // Random init on 10 classes ≈ 10 %; even a few rounds should beat it.
        assert!(result.final_acc > 0.15, "final acc {}", result.final_acc);
        assert_eq!(result.per_client_acc.len(), 6);
        assert!(!result.history.is_empty());
        assert!(result.total_mb > 0.0);
    }

    #[test]
    fn history_rounds_are_ascending_with_monotone_mb() {
        let fd = tiny_fd(1, 0.5);
        let cfg = FlConfig::tiny(1);
        let result = FedProx::default().run(&fd, &cfg);
        for w in result.history.windows(2) {
            assert!(w[0].round < w[1].round);
            assert!(w[0].cum_mb <= w[1].cum_mb);
        }
    }

    #[test]
    fn fednova_runs_and_aggregates() {
        let fd = tiny_fd(2, 0.5);
        let cfg = FlConfig::tiny(2);
        let result = FedNova.run(&fd, &cfg);
        assert!(result.final_acc.is_finite());
        assert!(result.final_acc >= 0.0 && result.final_acc <= 1.0);
    }

    #[test]
    fn all_globals_have_same_comm_cost() {
        let fd = tiny_fd(3, 0.5);
        let cfg = FlConfig::tiny(3);
        let a = FedAvg.run(&fd, &cfg);
        let b = FedProx::default().run(&fd, &cfg);
        let c = FedNova.run(&fd, &cfg);
        assert!((a.total_mb - b.total_mb).abs() < 1e-9);
        assert!((a.total_mb - c.total_mb).abs() < 1e-9);
    }

    #[test]
    fn runs_are_deterministic() {
        let fd = tiny_fd(4, 0.5);
        let cfg = FlConfig::tiny(4);
        let a = FedAvg.run(&fd, &cfg);
        let b = FedAvg.run(&fd, &cfg);
        assert_eq!(a.final_acc, b.final_acc);
        assert_eq!(a.per_client_acc, b.per_client_acc);
    }

    #[test]
    fn fednova_equals_fedavg_with_equal_local_steps() {
        // With identical per-client dataset sizes every client takes the
        // same τ_i, and FedNova's normalised update reduces algebraically
        // to plain FedAvg. IID partitioning over a divisible pool gives
        // exactly equal sizes.
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::Iid,
            &fedclust_data::federated::FederatedConfig {
                num_clients: 4,
                samples_per_class: 20,
                train_fraction: 0.8,
                seed: 5,
            },
        );
        let mut cfg = FlConfig::tiny(5);
        cfg.rounds = 2;
        // Equal τ_i means equal minibatch counts per epoch.
        let steps: Vec<usize> = fd
            .clients
            .iter()
            .map(|c| c.train_samples().div_ceil(cfg.batch_size))
            .collect();
        assert!(
            steps.iter().all(|&s| s == steps[0]),
            "setup requires equal step counts, got {:?}",
            steps
        );
        let nova = FedNova.run(&fd, &cfg);
        let avg = FedAvg.run(&fd, &cfg);
        assert!(
            (nova.final_acc - avg.final_acc).abs() < 1e-6,
            "FedNova {} vs FedAvg {}",
            nova.final_acc,
            avg.final_acc
        );
        assert_eq!(nova.per_client_acc, avg.per_client_acc);
    }

    #[test]
    fn train_global_model_matches_run_trajectory() {
        // The artifact-producing helper must follow the same rounds as the
        // telemetry-producing run (same sampling streams, same updates).
        let fd = tiny_fd(6, 0.4);
        let mut cfg = FlConfig::tiny(6);
        cfg.rounds = 2;
        let run = FedAvg.run(&fd, &cfg);
        let state = train_global_model(&fd, &cfg, GlobalVariant::FedAvg);
        let template = init_model(&fd, &cfg);
        let per_client = evaluate_clients(&fd, &template, |_| &state[..]);
        let acc = crate::engine::average_accuracy(&per_client);
        assert!((acc - run.final_acc).abs() < 1e-9);
    }
}
