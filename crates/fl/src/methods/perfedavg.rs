//! Per-FedAvg (Fallah et al. 2020): first-order MAML-style personalized FL.
//!
//! Clients optimise the meta-objective "loss after one local adaptation
//! step". We implement the first-order approximation (FO-MAML): for a pair
//! of minibatches (B₁, B₂), take an inner step on B₁ with rate α, compute
//! the gradient on B₂ at the adapted weights, then apply that gradient to
//! the *original* weights with rate β. At evaluation time each client
//! personalizes the global model with a few α-steps on its own training
//! data before testing.

use crate::checkpoint::{
    check_len, run_without_checkpoints, Checkpoint, CheckpointError, Checkpointer, MethodState,
};
use crate::config::FlConfig;
use crate::engine::{average_accuracy, init_model, sample_clients, weighted_average_or};
use crate::faults::Transport;
use crate::methods::FlMethod;
use crate::metrics::{RoundRecord, RunResult};
use fedclust_data::FederatedDataset;
use fedclust_nn::loss::cross_entropy;
use fedclust_nn::optim::{Sgd, SgdConfig};
use fedclust_nn::Model;
use fedclust_tensor::rng::{derive, streams};
use rayon::prelude::*;

/// Per-FedAvg with FO-MAML inner/outer steps.
///
/// The paper uses α = 1e-2, β = 1e-3 over 200 rounds; with the
/// reproduction's compressed round budget β is scaled up to keep the same
/// total meta-progress (documented in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct PerFedAvg {
    /// Inner (adaptation) learning rate α.
    pub alpha: f32,
    /// Outer (meta) learning rate β.
    pub beta: f32,
    /// Personalization epochs at evaluation time.
    pub personalize_epochs: usize,
}

impl Default for PerFedAvg {
    fn default() -> Self {
        PerFedAvg {
            alpha: 0.01,
            beta: 0.05,
            personalize_epochs: 1,
        }
    }
}

impl PerFedAvg {
    /// One client's FO-MAML local pass; returns the new state.
    fn local_meta_train(
        &self,
        template: &Model,
        start_state: &[f32],
        data: &fedclust_data::ClientData,
        cfg: &FlConfig,
        client: usize,
        round: usize,
    ) -> Vec<f32> {
        let mut model = template.clone();
        model.set_state_vec(start_state);
        let mut rng = derive(
            cfg.seed,
            &[streams::LOCAL_TRAIN, client as u64, round as u64],
        );
        for _ in 0..cfg.local_epochs {
            let batches = data.train.minibatch_indices(cfg.batch_size, &mut rng);
            for pair in batches.chunks(2) {
                if pair.len() < 2 {
                    continue; // need two independent batches per meta-step
                }
                let w = model.param_vec();
                // Inner step on B₁ with rate α (no momentum, as in MAML).
                let mut inner = Sgd::new(SgdConfig {
                    lr: self.alpha,
                    momentum: 0.0,
                    weight_decay: 0.0,
                });
                let (x1, y1) = data.train.batch(&pair[0]);
                model.train_step(x1, &y1, &mut inner);
                // Gradient on B₂ at the adapted weights.
                let (x2, y2) = data.train.batch(&pair[1]);
                let logits = model.forward(x2, true);
                let (_, grad) = cross_entropy(&logits, &y2);
                model.backward(grad);
                // Collect ∇f(w′) and apply it to the original w with rate β.
                let meta_grad: Vec<f32> = model
                    .params()
                    .iter()
                    .flat_map(|p| p.grad.data().iter().copied())
                    .collect::<Vec<f32>>();
                model.zero_grad();
                let new_w: Vec<f32> = w
                    .iter()
                    .zip(&meta_grad)
                    .map(|(&wi, &g)| wi - self.beta * g)
                    .collect();
                model.set_param_vec(&new_w);
            }
        }
        model.state_vec()
    }

    /// Personalize from the global state and evaluate each client.
    fn evaluate_personalized(
        &self,
        fd: &FederatedDataset,
        template: &Model,
        global: &[f32],
        cfg: &FlConfig,
    ) -> Vec<f32> {
        (0..fd.num_clients())
            .into_par_iter()
            .map(|client| {
                let mut model = template.clone();
                model.set_state_vec(global);
                let mut opt = Sgd::new(SgdConfig {
                    lr: self.alpha,
                    momentum: 0.0,
                    weight_decay: 0.0,
                });
                crate::engine::local_train(
                    &mut model,
                    &fd.clients[client],
                    &mut opt,
                    self.personalize_epochs,
                    cfg.batch_size,
                    cfg.seed,
                    client,
                    usize::MAX - 1, // a dedicated rng stream for evaluation
                );
                let test = &fd.clients[client].test;
                if test.is_empty() {
                    return 0.0;
                }
                let idx: Vec<usize> = (0..test.len()).collect();
                let (x, y) = test.batch(&idx);
                model.evaluate(x, &y).1
            })
            .collect()
    }
}

impl PerFedAvg {
    /// Run and also return the trained global (meta) state, for post-hoc
    /// personalization of unseen clients (Table 6).
    pub fn run_detailed(&self, fd: &FederatedDataset, cfg: &FlConfig) -> (RunResult, Vec<f32>) {
        run_without_checkpoints(|ckpt| self.run_detailed_resumable(fd, cfg, ckpt))
    }

    /// [`PerFedAvg::run_detailed`] with checkpoint/resume support. The
    /// meta-state has the single-global-model shape, so it shares the
    /// `Global` checkpoint variant.
    pub fn run_detailed_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<(RunResult, Vec<f32>), CheckpointError> {
        let template = init_model(fd, cfg);
        let state_len = template.state_len();
        let mut global = template.state_vec();
        let mut transport = Transport::new(cfg);
        let mut history = Vec::new();
        let mut start_round = 0;

        if let Some(cp) = ckpt.resume_point(self.name(), cfg.seed)? {
            let MethodState::Global { state } = cp.state else {
                return Err(CheckpointError::WrongState(format!(
                    "PerFedAvg cannot resume from a {} checkpoint",
                    cp.state.kind()
                )));
            };
            check_len("meta state", state.len(), state_len)?;
            global = state;
            start_round = cp.next_round;
            history = cp.history;
            transport.restore_comm_state(cp.meter, cp.telemetry, cp.residuals);
        }

        for round in start_round..cfg.rounds {
            let sampled = sample_clients(fd.num_clients(), cfg, round);
            let delivered = transport.broadcast(round, &sampled, state_len);
            let trained: Vec<(usize, Vec<f32>, f32)> = delivered
                .par_iter()
                .map(|&client| {
                    let state = self.local_meta_train(
                        &template,
                        &global,
                        &fd.clients[client],
                        cfg,
                        client,
                        round,
                    );
                    (client, state, fd.clients[client].train_samples() as f32)
                })
                .collect();
            let mut updates: Vec<(Vec<f32>, f32)> = Vec::with_capacity(trained.len());
            for (client, mut state, w) in trained {
                if transport.uplink(round, client, &mut state, Some(&global), Some(&global))
                    && transport.screen(&state, state_len)
                {
                    updates.push((state, w));
                }
            }
            let items: Vec<(&[f32], f32)> =
                updates.iter().map(|(s, w)| (s.as_slice(), *w)).collect();
            global = weighted_average_or(&items, &global);

            if cfg.should_eval(round) {
                let per_client = self.evaluate_personalized(fd, &template, &global, cfg);
                history.push(RoundRecord {
                    round: round + 1,
                    avg_acc: average_accuracy(&per_client),
                    cum_mb: transport.meter().total_mb(),
                });
            }

            ckpt.on_round_end(round, || Checkpoint {
                method: self.name().to_string(),
                seed: cfg.seed,
                next_round: round + 1,
                meter: transport.meter().clone(),
                telemetry: transport.telemetry(),
                history: history.clone(),
                state: MethodState::Global {
                    state: global.clone(),
                },
                residuals: transport.codec_residuals(),
            })?;
        }

        let per_client_acc = self.evaluate_personalized(fd, &template, &global, cfg);
        let result = RunResult {
            method: self.name().to_string(),
            final_acc: average_accuracy(&per_client_acc),
            per_client_acc,
            history,
            num_clusters: None,
            total_mb: transport.meter().total_mb(),
            faults: transport.telemetry(),
        };
        Ok((result, global))
    }
}

impl FlMethod for PerFedAvg {
    fn name(&self) -> &'static str {
        "PerFedAvg"
    }

    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        self.run_detailed(fd, cfg).0
    }

    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        Ok(self.run_detailed_resumable(fd, cfg, ckpt)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_data::{DatasetProfile, Partition};

    #[test]
    fn perfedavg_runs_and_personalizes() {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.3 },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 5,
                samples_per_class: 30,
                train_fraction: 0.8,
                seed: 0,
            },
        );
        let mut cfg = FlConfig::tiny(0);
        cfg.rounds = 4;
        let r = PerFedAvg::default().run(&fd, &cfg);
        assert!(r.final_acc.is_finite());
        assert!(r.final_acc >= 0.0 && r.final_acc <= 1.0);
        assert!(r.total_mb > 0.0);
        assert!(!r.history.is_empty());
    }
}
