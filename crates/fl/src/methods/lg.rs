//! LG-FedAvg (Liang et al. 2020): local low-level representations, global
//! high-level layers.
//!
//! Each client keeps its own parameters for the first (feature-extraction)
//! blocks and only the last `global_blocks` parameter blocks are
//! communicated and averaged — hence its tiny communication cost in the
//! paper's Table 5.

use crate::checkpoint::{
    check_len, run_without_checkpoints, Checkpoint, CheckpointError, Checkpointer, MethodState,
};
use crate::config::FlConfig;
use crate::engine::{
    average_accuracy, init_model, local_train, sample_clients, weighted_average_or,
};
use crate::faults::Transport;
use crate::methods::FlMethod;
use crate::metrics::{RoundRecord, RunResult};
use fedclust_data::FederatedDataset;
use fedclust_nn::optim::Sgd;
use rayon::prelude::*;

/// LG-FedAvg with the paper's split: the last two parameter blocks are
/// global (classifier head), everything below is local to each client.
#[derive(Debug, Clone, Copy)]
pub struct LgFedAvg {
    /// Number of trailing parameter blocks treated as global.
    pub global_blocks: usize,
}

impl Default for LgFedAvg {
    fn default() -> Self {
        LgFedAvg { global_blocks: 2 }
    }
}

/// What an LG-FedAvg run leaves behind: the trained global head and where
/// it sits in the parameter/state vector. Newcomers combine it with their
/// own (freshly initialised) local layers.
pub struct LgArtifacts {
    /// The trained global tail (global param blocks + extra state).
    pub global_part: Vec<f32>,
    /// Offset in the state vector where the global part begins.
    pub split: usize,
}

impl LgFedAvg {
    /// Run and keep the trained global head (Table 6).
    pub fn run_detailed(&self, fd: &FederatedDataset, cfg: &FlConfig) -> (RunResult, LgArtifacts) {
        run_without_checkpoints(|ckpt| self.run_detailed_resumable(fd, cfg, ckpt))
    }

    /// [`LgFedAvg::run_detailed`] with checkpoint/resume support.
    pub fn run_detailed_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<(RunResult, LgArtifacts), CheckpointError> {
        let template = init_model(fd, cfg);
        let blocks = template.param_blocks();
        assert!(
            self.global_blocks < blocks.len(),
            "need at least one local block"
        );
        // Offset (in the param vector) where the global part begins.
        let split = blocks[blocks.len() - self.global_blocks].offset;
        let num_params = template.num_params();
        let state_len = template.state_len();
        // The communicated payload: global param blocks + any extra state
        // (batch-norm stats travel with the global part).
        let comm_len = (num_params - split) + (state_len - num_params);

        let init_state = template.state_vec();
        let mut global_part: Vec<f32> = init_state[split..].to_vec();
        // All clients start from the same θ⁰ (random init, as the paper
        // configures LG for fairness).
        let mut client_states: Vec<Vec<f32>> = vec![init_state.clone(); fd.num_clients()];
        let mut transport = Transport::new(cfg);
        let mut history = Vec::new();
        let mut start_round = 0;

        if let Some(cp) = ckpt.resume_point(self.name(), cfg.seed)? {
            let MethodState::Lg {
                global_part: gp,
                client_states: cs,
            } = cp.state
            else {
                return Err(CheckpointError::WrongState(format!(
                    "LG cannot resume from a {} checkpoint",
                    cp.state.kind()
                )));
            };
            check_len("global tail", gp.len(), init_state.len() - split)?;
            check_len("client states", cs.len(), fd.num_clients())?;
            for s in &cs {
                check_len("client state", s.len(), state_len)?;
            }
            global_part = gp;
            client_states = cs;
            start_round = cp.next_round;
            history = cp.history;
            transport.restore_comm_state(cp.meter, cp.telemetry, cp.residuals);
        }

        for round in start_round..cfg.rounds {
            let sampled = sample_clients(fd.num_clients(), cfg, round);
            // Only the global tail travels; clients the downlink never
            // reaches sit the round out entirely.
            let delivered = transport.broadcast(round, &sampled, comm_len);
            let trained: Vec<(usize, Vec<f32>, f32)> = delivered
                .par_iter()
                .map(|&client| {
                    let mut state = client_states[client].clone();
                    state[split..].copy_from_slice(&global_part);
                    let mut model = template.clone();
                    model.set_state_vec(&state);
                    let mut opt = Sgd::new(cfg.sgd());
                    local_train(
                        &mut model,
                        &fd.clients[client],
                        &mut opt,
                        cfg.local_epochs,
                        cfg.batch_size,
                        cfg.seed,
                        client,
                        round,
                    );
                    (
                        client,
                        model.state_vec(),
                        fd.clients[client].train_samples() as f32,
                    )
                })
                .collect();
            // Clients persist their full new state (local part matters)
            // even when the upload is lost — losing the uplink does not
            // undo local training. The server averages only the global
            // tails that survive the uplink and the quarantine screen.
            let mut tails: Vec<(Vec<f32>, f32)> = Vec::with_capacity(trained.len());
            for (client, state, w) in trained {
                let mut tail = state[split..].to_vec();
                if transport.uplink(
                    round,
                    client,
                    &mut tail,
                    Some(&global_part),
                    Some(&global_part),
                ) && transport.screen(&tail, comm_len)
                {
                    tails.push((tail, w));
                }
                client_states[client] = state;
            }
            let items: Vec<(&[f32], f32)> = tails.iter().map(|(t, w)| (t.as_slice(), *w)).collect();
            global_part = weighted_average_or(&items, &global_part);

            if cfg.should_eval(round) {
                let per_client = self.evaluate(fd, &template, &client_states, &global_part, split);
                history.push(RoundRecord {
                    round: round + 1,
                    avg_acc: average_accuracy(&per_client),
                    cum_mb: transport.meter().total_mb(),
                });
            }

            ckpt.on_round_end(round, || Checkpoint {
                method: self.name().to_string(),
                seed: cfg.seed,
                next_round: round + 1,
                meter: transport.meter().clone(),
                telemetry: transport.telemetry(),
                history: history.clone(),
                state: MethodState::Lg {
                    global_part: global_part.clone(),
                    client_states: client_states.clone(),
                },
                residuals: transport.codec_residuals(),
            })?;
        }

        let per_client_acc = self.evaluate(fd, &template, &client_states, &global_part, split);
        let result = RunResult {
            method: self.name().to_string(),
            final_acc: average_accuracy(&per_client_acc),
            per_client_acc,
            history,
            num_clusters: None,
            total_mb: transport.meter().total_mb(),
            faults: transport.telemetry(),
        };
        Ok((result, LgArtifacts { global_part, split }))
    }
}

impl FlMethod for LgFedAvg {
    fn name(&self) -> &'static str {
        "LG"
    }

    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        self.run_detailed(fd, cfg).0
    }

    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        Ok(self.run_detailed_resumable(fd, cfg, ckpt)?.0)
    }
}

impl LgFedAvg {
    fn evaluate(
        &self,
        fd: &FederatedDataset,
        template: &fedclust_nn::Model,
        client_states: &[Vec<f32>],
        global_part: &[f32],
        split: usize,
    ) -> Vec<f32> {
        let states: Vec<Vec<f32>> = client_states
            .iter()
            .map(|s| {
                let mut state = s.clone();
                state[split..].copy_from_slice(global_part);
                state
            })
            .collect();
        crate::engine::evaluate_clients(fd, template, |c| states[c].as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_data::{DatasetProfile, Partition};

    #[test]
    fn lg_communicates_less_than_fedavg() {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.3 },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 6,
                samples_per_class: 30,
                train_fraction: 0.8,
                seed: 0,
            },
        );
        let cfg = FlConfig::tiny(0);
        let lg = LgFedAvg::default().run(&fd, &cfg);
        let fedavg = crate::methods::FedAvg.run(&fd, &cfg);
        assert!(
            lg.total_mb < fedavg.total_mb * 0.8,
            "LG {} vs FedAvg {}",
            lg.total_mb,
            fedavg.total_mb
        );
        assert!(lg.final_acc.is_finite());
    }
}
