//! CFL (Sattler et al. 2020): iterative bi-partitioning clustered FL.
//!
//! Training proceeds like FedAvg inside each cluster. After aggregation
//! the server inspects the member updates ΔΘ_i = θ_cluster − θ_i: when the
//! cluster is near a stationary point of the *joint* objective (small mean
//! update) while individual clients still want to move (large max update),
//! the cluster is split in two by the cosine similarity of the updates.
//! This needs many rounds to stabilise — the communication inefficiency
//! the paper's §3.2 calls out.
//!
//! Faithfulness notes (documented deviations):
//! * the split thresholds ε₁/ε₂ are interpreted *relative to the initial
//!   mean update norm* so they are scale-free across our datasets;
//! * the optimal bi-partition is computed by complete-linkage hierarchical
//!   clustering on cosine distances (Sattler's exact pairing search is
//!   exponential; complete-linkage 2-cut is the standard approximation);
//! * only clients with a cached update participate in the split decision —
//!   never-sampled members follow the sub-cluster of the first split group.

use crate::checkpoint::{
    check_len, run_without_checkpoints, Checkpoint, CheckpointError, Checkpointer, MethodState,
};
use crate::config::FlConfig;
use crate::engine::{
    average_accuracy, evaluate_clients, init_model, sample_clients, train_round, weighted_average,
};
use crate::faults::Transport;
use crate::methods::FlMethod;
use crate::metrics::{RoundRecord, RunResult};
use fedclust_cluster::hac::{cluster_k, Linkage};
use fedclust_cluster::ProximityMatrix;
use fedclust_data::FederatedDataset;
use fedclust_tensor::distance::cosine;

/// Sattler-style clustered federated learning.
#[derive(Debug, Clone, Copy)]
pub struct Cfl {
    /// Mean-update-norm threshold ε₁ (relative to the round-1 mean norm).
    pub eps1: f32,
    /// Max-update-norm threshold ε₂ (relative to the round-1 mean norm).
    pub eps2: f32,
    /// Rounds to wait before allowing any split.
    pub warmup_rounds: usize,
}

impl Default for Cfl {
    fn default() -> Self {
        // The paper's CFL configuration: ε₁ = 0.4, ε₂ = 0.6.
        Cfl {
            eps1: 0.4,
            eps2: 0.6,
            warmup_rounds: 2,
        }
    }
}

struct Cluster {
    state: Vec<f32>,
    members: Vec<usize>,
}

impl FlMethod for Cfl {
    fn name(&self) -> &'static str {
        "CFL"
    }

    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        run_without_checkpoints(|ckpt| self.run_resumable(fd, cfg, ckpt))
    }

    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        let template = init_model(fd, cfg);
        let num_params = template.num_params();
        let state_len = template.state_len();
        let mut clusters = vec![Cluster {
            state: template.state_vec(),
            members: (0..fd.num_clients()).collect(),
        }];
        // Latest parameter-update direction per client (for splits).
        let mut last_update: Vec<Option<Vec<f32>>> = vec![None; fd.num_clients()];
        let mut reference_norm: Option<f64> = None;
        let mut transport = Transport::new(cfg);
        let mut history = Vec::new();
        let mut start_round = 0;

        if let Some(cp) = ckpt.resume_point(self.name(), cfg.seed)? {
            let MethodState::Cfl {
                states,
                members,
                last_update: lu,
                reference_norm: rn,
            } = cp.state
            else {
                return Err(CheckpointError::WrongState(format!(
                    "CFL cannot resume from a {} checkpoint",
                    cp.state.kind()
                )));
            };
            check_len("cluster member lists", members.len(), states.len())?;
            check_len("cached updates", lu.len(), fd.num_clients())?;
            for s in &states {
                check_len("cluster state", s.len(), state_len)?;
            }
            for u in lu.iter().flatten() {
                check_len("cached update", u.len(), num_params)?;
            }
            for m in members.iter().flatten() {
                if *m >= fd.num_clients() {
                    return Err(CheckpointError::Mismatch(format!(
                        "cluster member {} out of range for {} clients",
                        m,
                        fd.num_clients()
                    )));
                }
            }
            clusters = states
                .into_iter()
                .zip(members)
                .map(|(state, members)| Cluster { state, members })
                .collect();
            last_update = lu;
            reference_norm = rn;
            start_round = cp.next_round;
            history = cp.history;
            transport.restore_comm_state(cp.meter, cp.telemetry, cp.residuals);
        }

        for round in start_round..cfg.rounds {
            let sampled = sample_clients(fd.num_clients(), cfg, round);
            // Group sampled clients by their cluster.
            let cluster_of: Vec<usize> = client_to_cluster(&clusters, fd.num_clients());
            let mut split_requests: Vec<usize> = Vec::new();
            for (ci, cluster) in clusters.iter_mut().enumerate() {
                let members: Vec<usize> = sampled
                    .iter()
                    .copied()
                    .filter(|&c| cluster_of[c] == ci)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let updates = train_round(
                    fd,
                    cfg,
                    &template,
                    &cluster.state,
                    &members,
                    round,
                    None,
                    &mut transport,
                );
                if updates.is_empty() {
                    // Every upload lost or quarantined: the cluster skips
                    // this round and carries its model forward.
                    continue;
                }
                // Cache parameter-space update directions.
                let mut norms = Vec::with_capacity(updates.len());
                let mut mean_update = vec![0.0f64; num_params];
                for u in &updates {
                    let delta: Vec<f32> = u.state[..num_params]
                        .iter()
                        .zip(&cluster.state[..num_params])
                        .map(|(l, g)| l - g)
                        .collect();
                    let norm = delta
                        .iter()
                        .map(|&d| (d as f64) * (d as f64))
                        .sum::<f64>()
                        .sqrt();
                    norms.push(norm);
                    for (m, &d) in mean_update.iter_mut().zip(&delta) {
                        *m += d as f64 / updates.len() as f64;
                    }
                    last_update[u.client] = Some(delta);
                }
                let mean_norm = mean_update.iter().map(|d| d * d).sum::<f64>().sqrt();
                let max_norm = norms.iter().cloned().fold(0.0f64, f64::max);
                let r = *reference_norm.get_or_insert(mean_norm.max(1e-12));

                // FedAvg aggregation inside the cluster.
                let items: Vec<(&[f32], f32)> = updates
                    .iter()
                    .map(|u| (u.state.as_slice(), u.weight))
                    .collect();
                cluster.state = weighted_average(&items);

                // Split condition (relative thresholds).
                if round >= self.warmup_rounds
                    && cluster.members.len() >= 2
                    && members.len() >= 2
                    && mean_norm < self.eps1 as f64 * r
                    && max_norm > self.eps2 as f64 * r
                {
                    split_requests.push(ci);
                }
            }

            // Apply splits (highest index first so indices stay valid).
            for &ci in split_requests.iter().rev() {
                if let Some(new_cluster) = split_cluster(&mut clusters[ci], &last_update) {
                    clusters.push(new_cluster);
                }
            }

            if cfg.should_eval(round) {
                let cluster_of = client_to_cluster(&clusters, fd.num_clients());
                let per_client =
                    evaluate_clients(fd, &template, |c| clusters[cluster_of[c]].state.as_slice());
                history.push(RoundRecord {
                    round: round + 1,
                    avg_acc: average_accuracy(&per_client),
                    cum_mb: transport.meter().total_mb(),
                });
            }

            ckpt.on_round_end(round, || Checkpoint {
                method: self.name().to_string(),
                seed: cfg.seed,
                next_round: round + 1,
                meter: transport.meter().clone(),
                telemetry: transport.telemetry(),
                history: history.clone(),
                state: MethodState::Cfl {
                    states: clusters.iter().map(|c| c.state.clone()).collect(),
                    members: clusters.iter().map(|c| c.members.clone()).collect(),
                    last_update: last_update.clone(),
                    reference_norm,
                },
                residuals: transport.codec_residuals(),
            })?;
        }

        let cluster_of = client_to_cluster(&clusters, fd.num_clients());
        let per_client_acc =
            evaluate_clients(fd, &template, |c| clusters[cluster_of[c]].state.as_slice());
        Ok(RunResult {
            method: self.name().to_string(),
            final_acc: average_accuracy(&per_client_acc),
            per_client_acc,
            history,
            num_clusters: Some(clusters.len()),
            total_mb: transport.meter().total_mb(),
            faults: transport.telemetry(),
        })
    }
}

fn client_to_cluster(clusters: &[Cluster], num_clients: usize) -> Vec<usize> {
    let mut out = vec![0usize; num_clients];
    for (ci, cluster) in clusters.iter().enumerate() {
        for &m in &cluster.members {
            out[m] = ci;
        }
    }
    out
}

/// Bi-partition a cluster by cosine distance of the members' cached
/// updates. Members without a cached update follow group 0. Returns the
/// new (split-off) cluster, or `None` if no usable bi-partition exists.
fn split_cluster(cluster: &mut Cluster, last_update: &[Option<Vec<f32>>]) -> Option<Cluster> {
    // Pair each member with its cached update up front, so the proximity
    // closure below indexes proven-present updates instead of unwrapping.
    let with_updates: Vec<(usize, &Vec<f32>)> = cluster
        .members
        .iter()
        .filter_map(|&c| last_update[c].as_ref().map(|u| (c, u)))
        .collect();
    if with_updates.len() < 2 {
        return None;
    }
    let matrix = ProximityMatrix::from_fn(with_updates.len(), |i, j| {
        cosine(with_updates[i].1, with_updates[j].1)
    });
    let labels = cluster_k(&matrix, Linkage::Complete, 2);
    let group1: Vec<usize> = with_updates
        .iter()
        .zip(&labels)
        .filter(|(_, &l)| l == 1)
        .map(|(&(c, _), _)| c)
        .collect();
    if group1.is_empty() || group1.len() == with_updates.len() {
        return None;
    }
    // BTreeSet, not HashSet: `members` retains its original order here, but
    // keeping hasher-ordered containers out of the aggregation path entirely
    // is the workspace's deterministic-iteration invariant.
    let group1_set: std::collections::BTreeSet<usize> = group1.iter().copied().collect();
    cluster.members.retain(|c| !group1_set.contains(c));
    Some(Cluster {
        state: cluster.state.clone(),
        members: group1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_data::{DatasetProfile, Partition};

    #[test]
    fn cfl_runs_and_may_split() {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.2 },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 8,
                samples_per_class: 30,
                train_fraction: 0.8,
                seed: 0,
            },
        );
        let mut cfg = FlConfig::tiny(0);
        cfg.rounds = 6;
        cfg.sample_rate = 1.0; // full participation helps splits in a tiny test
        let r = Cfl::default().run(&fd, &cfg);
        assert!(r.final_acc.is_finite());
        let k = r.num_clusters.unwrap();
        assert!((1..=8).contains(&k), "clusters {}", k);
    }
}
