//! The baseline FL methods the paper compares against.
//!
//! All methods implement [`FlMethod`], returning a [`RunResult`] with the
//! same telemetry, so the experiment harnesses treat FedClust and every
//! baseline uniformly.

use crate::checkpoint::{CheckpointError, Checkpointer};
use crate::config::FlConfig;
use crate::metrics::RunResult;
use fedclust_data::FederatedDataset;

pub mod cfl;
pub mod feddyn;
pub mod global;
pub mod ifca;
pub mod lg;
pub mod local;
pub mod pacfl;
pub mod perfedavg;
pub mod scaffold;

pub use cfl::Cfl;
pub use feddyn::FedDyn;
pub use global::{FedAvg, FedNova, FedProx};
pub use ifca::Ifca;
pub use lg::LgFedAvg;
pub use local::LocalOnly;
pub use pacfl::Pacfl;
pub use perfedavg::PerFedAvg;
pub use scaffold::Scaffold;

/// A federated learning method that can run a full experiment.
pub trait FlMethod: Sync {
    /// Display name, matching the paper's tables (e.g. `"FedAvg"`).
    fn name(&self) -> &'static str;

    /// Run the method on a federated dataset and return its telemetry.
    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult;

    /// Run with durable checkpointing: consult `ckpt` for a resume point
    /// before round 0, write a checkpoint at the cadence it dictates, and
    /// continue **bit-identically** from a restored snapshot (all engine
    /// RNG derives statelessly from `(seed, stream, round, client)`, so a
    /// resumed run matches an uninterrupted one byte for byte).
    ///
    /// The default implementation ignores `ckpt` and runs from scratch —
    /// correct for methods without cross-round server state (e.g. purely
    /// local training). Every federated method overrides it.
    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        let _ = ckpt;
        Ok(self.run(fd, cfg))
    }
}

/// All nine baselines with the paper's hyper-parameters, in table order.
/// (FedClust itself is provided by the `fedclust` crate.)
pub fn baselines() -> Vec<Box<dyn FlMethod>> {
    vec![
        Box::new(LocalOnly::default()),
        Box::new(FedAvg),
        Box::new(FedProx::default()),
        Box::new(FedNova),
        Box::new(LgFedAvg::default()),
        Box::new(PerFedAvg::default()),
        Box::new(Cfl::default()),
        Box::new(Ifca::default()),
        Box::new(Pacfl::default()),
    ]
}

/// Additional drift-mitigation methods the paper's §2.1 discusses but does
/// not put in its tables: SCAFFOLD (variance reduction via control
/// variates) and FedDyn (dynamic regularization).
pub fn extended_baselines() -> Vec<Box<dyn FlMethod>> {
    vec![Box::new(Scaffold::default()), Box::new(FedDyn::default())]
}
