//! Run telemetry and derived evaluation metrics.

use crate::faults::FaultTelemetry;
use serde::{Deserialize, Serialize};

/// One evaluation point in a run's history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 1-based round index at which the evaluation happened.
    pub round: usize,
    /// Average local test accuracy across all clients, in `[0, 1]`.
    pub avg_acc: f64,
    /// Cumulative communication cost (Mb) up to and including this round.
    pub cum_mb: f64,
}

/// The result of one full FL run with one method on one federated dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Method name.
    pub method: String,
    /// Final average local test accuracy in `[0, 1]`.
    pub final_acc: f64,
    /// Per-client final local test accuracies.
    pub per_client_acc: Vec<f32>,
    /// Accuracy/communication trajectory (Fig. 3, Tables 4–5).
    pub history: Vec<RoundRecord>,
    /// Number of clusters formed, for cluster-based methods.
    pub num_clusters: Option<usize>,
    /// Total communication cost of the run (Mb).
    pub total_mb: f64,
    /// Fault-injection counters (all zero for a fault-free run).
    pub faults: FaultTelemetry,
}

impl Default for RunResult {
    fn default() -> Self {
        RunResult {
            method: String::new(),
            final_acc: 0.0,
            per_client_acc: Vec::new(),
            history: Vec::new(),
            num_clusters: None,
            total_mb: 0.0,
            faults: FaultTelemetry::default(),
        }
    }
}

impl RunResult {
    /// First round at which the average accuracy reached `target`
    /// (Table 4). `None` if never reached.
    pub fn rounds_to_target(&self, target: f64) -> Option<usize> {
        self.history
            .iter()
            .find(|r| r.avg_acc >= target)
            .map(|r| r.round)
    }

    /// Cumulative communication (Mb) when `target` accuracy was first
    /// reached (Table 5). `None` if never reached.
    pub fn mb_to_target(&self, target: f64) -> Option<f64> {
        self.history
            .iter()
            .find(|r| r.avg_acc >= target)
            .map(|r| r.cum_mb)
    }
}

/// Fairness statistics over per-client accuracies — the dispersion view
/// behind the paper's motivation that a single global model leaves some
/// clients far behind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fairness {
    /// Mean per-client accuracy.
    pub mean: f64,
    /// Population standard deviation across clients.
    pub std: f64,
    /// Mean accuracy of the worst-off 10 % of clients (at least one).
    pub worst_decile: f64,
    /// Mean accuracy of the best-off 10 % of clients (at least one).
    pub best_decile: f64,
}

impl Fairness {
    /// Compute fairness statistics from per-client accuracies.
    /// Returns all-zero stats for an empty slice.
    pub fn from_accuracies(per_client: &[f32]) -> Fairness {
        if per_client.is_empty() {
            return Fairness {
                mean: 0.0,
                std: 0.0,
                worst_decile: 0.0,
                best_decile: 0.0,
            };
        }
        let xs: Vec<f64> = per_client.iter().map(|&a| a as f64).collect();
        let (mean, std) = mean_std(&xs);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let k = (sorted.len() / 10).max(1);
        let worst_decile = sorted[..k].iter().sum::<f64>() / k as f64;
        let best_decile = sorted[sorted.len() - k..].iter().sum::<f64>() / k as f64;
        Fairness {
            mean,
            std,
            worst_decile,
            best_decile,
        }
    }

    /// The best-to-worst decile gap; 0 means perfectly even outcomes.
    pub fn decile_gap(&self) -> f64 {
        self.best_decile - self.worst_decile
    }
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Aggregate the same method's results across seeds: mean ± std of final
/// accuracy, plus the per-seed results for downstream use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedAggregate {
    /// Method name.
    pub method: String,
    /// Mean final accuracy across seeds.
    pub mean_acc: f64,
    /// Std of final accuracy across seeds.
    pub std_acc: f64,
    /// The per-seed runs.
    pub runs: Vec<RunResult>,
}

impl SeedAggregate {
    /// Aggregate runs that must all share one method name.
    ///
    /// # Panics
    /// Panics if `runs` is empty or methods differ.
    pub fn from_runs(runs: Vec<RunResult>) -> Self {
        assert!(!runs.is_empty(), "no runs to aggregate");
        let method = runs[0].method.clone();
        assert!(
            runs.iter().all(|r| r.method == method),
            "aggregating runs of different methods"
        );
        let accs: Vec<f64> = runs.iter().map(|r| r.final_acc).collect();
        let (mean_acc, std_acc) = mean_std(&accs);
        SeedAggregate {
            method,
            mean_acc,
            std_acc,
            runs,
        }
    }

    /// Median rounds-to-target across seeds (`None` if a majority of seeds
    /// never reached the target).
    pub fn rounds_to_target(&self, target: f64) -> Option<usize> {
        let mut vals: Vec<usize> = self
            .runs
            .iter()
            .filter_map(|r| r.rounds_to_target(target))
            .collect();
        if vals.len() * 2 < self.runs.len() {
            return None;
        }
        vals.sort_unstable();
        Some(vals[vals.len() / 2])
    }

    /// Median Mb-to-target across seeds (same reachability rule).
    pub fn mb_to_target(&self, target: f64) -> Option<f64> {
        let mut vals: Vec<f64> = self
            .runs
            .iter()
            .filter_map(|r| r.mb_to_target(target))
            .collect();
        if vals.len() * 2 < self.runs.len() {
            return None;
        }
        vals.sort_by(f64::total_cmp);
        Some(vals[vals.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(accs: &[(usize, f64, f64)], final_acc: f64) -> RunResult {
        RunResult {
            method: "m".into(),
            final_acc,
            per_client_acc: vec![],
            history: accs
                .iter()
                .map(|&(round, avg_acc, cum_mb)| RoundRecord {
                    round,
                    avg_acc,
                    cum_mb,
                })
                .collect(),
            num_clusters: None,
            total_mb: accs.last().map_or(0.0, |l| l.2),
            ..RunResult::default()
        }
    }

    #[test]
    fn targets_found_at_first_crossing() {
        let r = run(&[(2, 0.3, 1.0), (4, 0.6, 2.0), (6, 0.8, 3.0)], 0.8);
        assert_eq!(r.rounds_to_target(0.5), Some(4));
        assert_eq!(r.mb_to_target(0.5), Some(2.0));
        assert_eq!(r.rounds_to_target(0.9), None);
        assert_eq!(r.mb_to_target(0.9), None);
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn aggregate_across_seeds() {
        let runs = vec![
            run(&[(2, 0.5, 1.0)], 0.5),
            run(&[(2, 0.7, 1.0)], 0.7),
            run(&[(2, 0.6, 1.0)], 0.6),
        ];
        let agg = SeedAggregate::from_runs(runs);
        assert!((agg.mean_acc - 0.6).abs() < 1e-12);
        assert!(agg.std_acc > 0.0);
        assert_eq!(agg.rounds_to_target(0.55), Some(2));
        assert_eq!(agg.rounds_to_target(0.65), None, "only 1 of 3 reached");
    }

    #[test]
    fn fairness_statistics() {
        let accs = [0.1f32, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
        let f = Fairness::from_accuracies(&accs);
        assert!((f.mean - 0.55).abs() < 1e-6);
        assert!((f.worst_decile - 0.1).abs() < 1e-6);
        assert!((f.best_decile - 1.0).abs() < 1e-6);
        assert!((f.decile_gap() - 0.9).abs() < 1e-6);
        assert!(f.std > 0.0);
    }

    #[test]
    fn fairness_uniform_accuracies_have_zero_gap() {
        let f = Fairness::from_accuracies(&[0.5; 7]);
        assert_eq!(f.std, 0.0);
        assert_eq!(f.decile_gap(), 0.0);
        assert_eq!(f.mean, 0.5);
    }

    #[test]
    fn fairness_empty_and_singleton() {
        let empty = Fairness::from_accuracies(&[]);
        assert_eq!(empty.mean, 0.0);
        let single = Fairness::from_accuracies(&[0.7]);
        assert!((single.mean - 0.7).abs() < 1e-6);
        assert!((single.worst_decile - 0.7).abs() < 1e-6);
        assert!((single.best_decile - 0.7).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "different methods")]
    fn mixed_methods_panic() {
        let mut a = run(&[], 0.1);
        let mut b = run(&[], 0.2);
        a.method = "x".into();
        b.method = "y".into();
        let _ = SeedAggregate::from_runs(vec![a, b]);
    }
}
