//! # fedclust-fl
//!
//! The federated-learning simulation engine and the nine baseline methods
//! the paper compares FedClust against.
//!
//! * [`config::FlConfig`] — the shared experiment knobs (rounds, client
//!   sampling rate, local epochs, optimiser settings, seed),
//! * [`comm::CommMeter`] — exact byte accounting of every up/down transfer
//!   (Tables 4 and 5 are derived from this),
//! * [`codec`] — upload compression plugins (int8/int4 quantization,
//!   top-k sparsification with error feedback, delta encoding) with
//!   wire-honest encoded-byte accounting,
//! * [`faults`] — deterministic fault injection (stragglers, link loss,
//!   update corruption, process crashes) and the server's resilience
//!   policy,
//! * [`checkpoint`] — crash-safe durable checkpoints with bit-identical
//!   resume (torn-write-safe atomic writes, checksummed format,
//!   generation rotation, corrupt-generation fallback),
//! * [`metrics`] — round telemetry, run results, rounds/Mb-to-target,
//! * [`engine`] — the shared round machinery: deterministic client
//!   sampling, parallel local training, weighted state averaging, and
//!   parallel all-client evaluation,
//! * [`methods`] — the baselines: `Local`, `FedAvg`, `FedProx`, `FedNova`,
//!   `LG-FedAvg`, `Per-FedAvg`, `CFL` (Sattler), `IFCA`, `PACFL`.
//!
//! FedClust itself lives in the `fedclust` crate and plugs into the same
//! [`methods::FlMethod`] trait.

pub mod checkpoint;
pub mod codec;
pub mod comm;
pub mod config;
pub mod engine;
pub mod faults;
pub mod methods;
pub mod metrics;

pub use checkpoint::{Checkpoint, CheckpointError, Checkpointer, MethodState};
pub use codec::{BaseCodec, CodecSpec};
pub use comm::CommMeter;
pub use config::FlConfig;
pub use faults::{CrashPlan, FaultPlan, FaultTelemetry, Transport};
pub use methods::FlMethod;
pub use metrics::{RoundRecord, RunResult};
