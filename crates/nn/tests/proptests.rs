//! Property-based tests of the neural-network layer contracts.

use fedclust_nn::activation::Relu;
use fedclust_nn::dense::Dense;
use fedclust_nn::layer::Layer;
use fedclust_nn::loss::cross_entropy;
use fedclust_nn::models::mlp;
use fedclust_nn::optim::{Sgd, SgdConfig};
use fedclust_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense layers are linear: f(αx) = αf(x) when bias is zero.
    #[test]
    fn dense_is_homogeneous(seed in 0u64..500, alpha in -3.0f32..3.0) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut layer = Dense::new(4, 3, &mut rng);
        layer.params_mut()[1].value.fill_zero(); // zero bias
        let x = fedclust_tensor::init::randn([2, 4], &mut rng);
        let y1 = layer.forward(x.map(|v| v * alpha), false);
        let y2 = layer.forward(x, false);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a - b * alpha).abs() < 1e-3, "{} vs {}", a, b * alpha);
        }
    }

    /// ReLU output is elementwise max(x, 0) on any shape.
    #[test]
    fn relu_semantics(v in proptest::collection::vec(-5.0f32..5.0, 1..32)) {
        let n = v.len();
        let mut relu = Relu::default();
        let y = relu.forward(Tensor::from_vec([n], v.clone()), false);
        for (o, i) in y.data().iter().zip(&v) {
            prop_assert_eq!(*o, i.max(0.0));
        }
    }

    /// Cross-entropy is non-negative and its gradient rows sum to zero.
    #[test]
    fn cross_entropy_invariants(
        logits in proptest::collection::vec(-8.0f32..8.0, 12),
        targets in proptest::collection::vec(0usize..4, 3),
    ) {
        let t = Tensor::from_vec([3, 4], logits);
        let (loss, grad) = cross_entropy(&t, &targets);
        prop_assert!(loss >= -1e-6, "loss {}", loss);
        for i in 0..3 {
            let s: f32 = grad.data()[i * 4..(i + 1) * 4].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// param_vec/set_param_vec round-trips on a real model, and the vector
    /// layout is stable across clones.
    #[test]
    fn param_vec_round_trip(seed in 0u64..500) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let m = mlp(12, 8, 4, &mut rng);
        let v = m.param_vec();
        let mut clone = m.clone();
        clone.set_param_vec(&v);
        prop_assert_eq!(clone.param_vec(), v);
        // Blocks tile the vector exactly.
        let blocks = m.param_blocks();
        let mut off = 0;
        for b in &blocks {
            prop_assert_eq!(b.offset, off);
            off += b.len;
        }
        prop_assert_eq!(off, m.num_params());
    }

    /// One SGD step with lr→0 leaves weights unchanged; with lr>0 and a
    /// nonzero gradient it changes them.
    #[test]
    fn sgd_step_scaling(seed in 0u64..500) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut m = mlp(6, 5, 3, &mut rng);
        let x = fedclust_tensor::init::randn([4, 6], &mut rng);
        let before = m.param_vec();

        let mut opt0 = Sgd::new(SgdConfig { lr: 0.0, momentum: 0.0, weight_decay: 0.0 });
        m.train_step(x.clone(), &[0, 1, 2, 0], &mut opt0);
        prop_assert_eq!(m.param_vec(), before.clone());

        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.0 });
        m.train_step(x, &[0, 1, 2, 0], &mut opt);
        prop_assert_ne!(m.param_vec(), before);
    }
}
