//! Softmax cross-entropy loss with fused gradient.

use fedclust_tensor::ops::{log_softmax_rows, softmax_rows};
use fedclust_tensor::Tensor;

/// Mean softmax cross-entropy over a batch of logits.
///
/// Returns `(loss, dloss/dlogits)`. The gradient is the classic fused form
/// `(softmax(logits) − onehot(targets)) / batch`, which is both faster and
/// more numerically robust than differentiating softmax and NLL separately.
///
/// # Panics
/// Panics if `logits` is not `(batch, classes)`, if `targets.len() != batch`,
/// or if any target is out of range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(
        logits.shape().ndim(),
        2,
        "cross_entropy expects (batch, classes)"
    );
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(targets.len(), b, "target count must match batch size");
    assert!(b > 0, "empty batch");
    let ls = log_softmax_rows(logits);
    let mut loss = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < c, "target {} out of range for {} classes", t, c);
        loss -= ls.at(&[i, t]) as f64;
    }
    let loss = (loss / b as f64) as f32;

    let mut grad = softmax_rows(logits);
    let inv_b = 1.0 / b as f32;
    for (i, &t) in targets.iter().enumerate() {
        *grad.at_mut(&[i, t]) -= 1.0;
    }
    grad.scale(inv_b);
    (loss, grad)
}

/// Classification accuracy of logits against integer targets, in `[0, 1]`.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    let preds = fedclust_tensor::ops::argmax_rows(logits);
    if preds.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(targets).filter(|(p, t)| p == t).count();
    correct as f32 / preds.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, _) = cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let logits = Tensor::from_vec([1, 3], vec![10.0, 0.0, 0.0]);
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 0.5]);
        let (_, grad) = cross_entropy(&logits, &[2, 0]);
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits = Tensor::from_vec([2, 3], vec![0.5, -0.2, 0.1, 1.0, 1.0, -1.0]);
        let targets = [1usize, 0];
        let (_, grad) = cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..2 {
            for j in 0..3 {
                let mut lp = logits.clone();
                *lp.at_mut(&[i, j]) += eps;
                let (l1, _) = cross_entropy(&lp, &targets);
                *lp.at_mut(&[i, j]) -= 2.0 * eps;
                let (l2, _) = cross_entropy(&lp, &targets);
                let numeric = (l1 - l2) / (2.0 * eps);
                assert!(
                    (numeric - grad.at(&[i, j])).abs() < 1e-3,
                    "grad[{},{}] numeric {} analytic {}",
                    i,
                    j,
                    numeric,
                    grad.at(&[i, j])
                );
            }
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec([3, 2], vec![2.0, 1.0, 0.0, 5.0, 1.0, 0.0]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_panics() {
        let _ = cross_entropy(&Tensor::zeros([1, 2]), &[5]);
    }
}
