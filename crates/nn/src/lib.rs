//! # fedclust-nn
//!
//! A from-scratch neural-network library with explicit, layer-by-layer
//! backpropagation — the training substrate the FedClust reproduction runs
//! on (the paper used PyTorch; see DESIGN.md for the substitution argument).
//!
//! Contents:
//!
//! * [`param::Param`] — a weight tensor paired with its gradient,
//! * [`layer::Layer`] — the forward/backward object-safe layer trait,
//! * layers: dense, conv2d (im2col), max/avg pooling, ReLU, batch-norm,
//!   flatten, residual blocks, and [`layer::Sequential`] composition,
//! * [`loss`] — softmax cross-entropy with fused gradient,
//! * [`optim::Sgd`] — SGD with momentum, weight decay and the FedProx
//!   proximal term,
//! * [`model::Model`] — a parameter-addressable network wrapper (flatten /
//!   unflatten of all weights, per-layer weight views, final-layer
//!   extraction — the object FedClust clusters on),
//! * [`models`] — the model zoo: MLP, LeNet-5-like, VGG-mini,
//!   ResNet-9-like.

pub mod activation;
pub mod conv2d;
pub mod dense;
pub mod layer;
pub mod loss;
pub mod model;
pub mod models;
pub mod norm;
pub mod optim;
pub mod param;
pub mod pool;
pub mod structural;

pub use layer::{Layer, Sequential};
pub use model::Model;
pub use optim::Sgd;
pub use param::Param;
