//! Batch normalisation for convolutional feature maps.

use crate::layer::Layer;
use crate::param::Param;
use fedclust_tensor::Tensor;

/// Per-channel batch normalisation over `(batch, C, H, W)`.
///
/// Training mode normalises with batch statistics and updates exponential
/// running estimates; eval mode uses the running estimates. Gamma/beta are
/// trainable. Running statistics are *not* trainable parameters but are part
/// of the model state that federated aggregation must average — they are
/// exposed via [`BatchNorm2d::running_stats`] / [`set_running_stats`]
/// and folded into the model's state vector by `fedclust-nn::model`.
///
/// [`set_running_stats`]: BatchNorm2d::set_running_stats
#[derive(Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// New batch-norm over `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones([channels])),
            beta: Param::new(Tensor::zeros([channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    /// The non-trainable running statistics `(mean, var)`.
    pub fn running_stats(&self) -> (&[f32], &[f32]) {
        (&self.running_mean, &self.running_var)
    }

    /// Overwrite the running statistics (used when loading aggregated
    /// federated state).
    pub fn set_running_stats(&mut self, mean: &[f32], var: &[f32]) {
        assert_eq!(mean.len(), self.channels);
        assert_eq!(var.len(), self.channels);
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Layer for BatchNorm2d {
    #[allow(clippy::needless_range_loop)] // channel index also builds plane offsets
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().ndim(), 4, "batchnorm expects (batch, C, H, W)");
        let (b, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        assert_eq!(c, self.channels, "batchnorm channel mismatch");
        let plane = h * w;
        let n = (b * plane) as f32;
        let mut out = x.clone();

        if train {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for bi in 0..b {
                for ci in 0..c {
                    let s: f32 = x.data()[(bi * c + ci) * plane..(bi * c + ci + 1) * plane]
                        .iter()
                        .sum();
                    mean[ci] += s;
                }
            }
            for m in &mut mean {
                *m /= n;
            }
            for bi in 0..b {
                for ci in 0..c {
                    let m = mean[ci];
                    let s: f32 = x.data()[(bi * c + ci) * plane..(bi * c + ci + 1) * plane]
                        .iter()
                        .map(|&v| (v - m) * (v - m))
                        .sum();
                    var[ci] += s;
                }
            }
            for v in &mut var {
                *v /= n;
            }
            let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            // Normalise + affine.
            for bi in 0..b {
                for ci in 0..c {
                    let (m, is) = (mean[ci], inv_std[ci]);
                    let (g, be) = (self.gamma.value.data()[ci], self.beta.value.data()[ci]);
                    for v in &mut out.data_mut()[(bi * c + ci) * plane..(bi * c + ci + 1) * plane] {
                        *v = (*v - m) * is;
                        // x_hat written; affine applied after caching below.
                        *v = g * *v + be;
                    }
                }
            }
            // Recompute x_hat for the cache (undo affine): cheaper to store
            // x_hat directly during the loop, so reconstruct it here.
            let mut x_hat = x.clone();
            for bi in 0..b {
                for ci in 0..c {
                    let (m, is) = (mean[ci], inv_std[ci]);
                    for v in &mut x_hat.data_mut()[(bi * c + ci) * plane..(bi * c + ci + 1) * plane]
                    {
                        *v = (*v - m) * is;
                    }
                }
            }
            // Update running stats.
            for ci in 0..c {
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
            }
            self.cache = Some(BnCache {
                x_hat,
                inv_std,
                dims: x.dims().to_vec(),
            });
        } else {
            for bi in 0..b {
                for ci in 0..c {
                    let m = self.running_mean[ci];
                    let is = 1.0 / (self.running_var[ci] + self.eps).sqrt();
                    let (g, be) = (self.gamma.value.data()[ci], self.beta.value.data()[ci]);
                    for v in &mut out.data_mut()[(bi * c + ci) * plane..(bi * c + ci + 1) * plane] {
                        *v = g * (*v - m) * is + be;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            // fedlint::allow(no-panic-paths): Layer contract — backward always follows a train-mode forward, which fills the cache
            .expect("batchnorm backward called without cached forward");
        let dims = cache.dims;
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let n = (b * plane) as f32;

        // Standard batch-norm backward:
        // dβ_c = Σ dy, dγ_c = Σ dy·x̂
        // dx̂ = dy·γ
        // dx = (1/N)·inv_std·(N·dx̂ − Σdx̂ − x̂·Σ(dx̂·x̂))
        let mut dbeta = vec![0.0f32; c];
        let mut dgamma = vec![0.0f32; c];
        let mut sum_dxhat = vec![0.0f32; c];
        let mut sum_dxhat_xhat = vec![0.0f32; c];
        for bi in 0..b {
            for ci in 0..c {
                let g = self.gamma.value.data()[ci];
                let off = (bi * c + ci) * plane;
                for i in 0..plane {
                    let dy = grad_out.data()[off + i];
                    let xh = cache.x_hat.data()[off + i];
                    dbeta[ci] += dy;
                    dgamma[ci] += dy * xh;
                    let dxh = dy * g;
                    sum_dxhat[ci] += dxh;
                    sum_dxhat_xhat[ci] += dxh * xh;
                }
            }
        }
        for ci in 0..c {
            self.beta.grad.data_mut()[ci] += dbeta[ci];
            self.gamma.grad.data_mut()[ci] += dgamma[ci];
        }
        let mut dx = Tensor::zeros(dims.clone());
        for bi in 0..b {
            for ci in 0..c {
                let g = self.gamma.value.data()[ci];
                let is = cache.inv_std[ci];
                let off = (bi * c + ci) * plane;
                for i in 0..plane {
                    let dy = grad_out.data()[off + i];
                    let xh = cache.x_hat.data()[off + i];
                    let dxh = dy * g;
                    dx.data_mut()[off + i] =
                        is / n * (n * dxh - sum_dxhat[ci] - xh * sum_dxhat_xhat[ci]);
                }
            }
        }
        dx
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn extra_state(&self) -> Vec<f32> {
        let mut out = self.running_mean.clone();
        out.extend_from_slice(&self.running_var);
        out
    }

    fn extra_state_len(&self) -> usize {
        2 * self.channels
    }

    fn set_extra_state(&mut self, state: &[f32]) {
        assert_eq!(
            state.len(),
            2 * self.channels,
            "batchnorm state length mismatch"
        );
        let (mean, var) = state.split_at(self.channels);
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn train_output_is_normalised() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(2);
        let x = fedclust_tensor::init::randn([4, 2, 3, 3], &mut rng);
        let y = bn.forward(x, true);
        // Per channel, mean ≈ 0 and var ≈ 1 (gamma=1, beta=0 initially).
        for ci in 0..2 {
            let mut vals = Vec::new();
            for bi in 0..4 {
                let off = (bi * 2 + ci) * 9;
                vals.extend_from_slice(&y.data()[off..off + 9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {}", mean);
            assert!((var - 1.0).abs() < 1e-2, "var {}", var);
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.set_running_stats(&[2.0], &[4.0]);
        let x = Tensor::full([1, 1, 1, 2], 4.0);
        let y = bn.forward(x, false);
        // (4-2)/sqrt(4+eps) ≈ 1.0
        for v in y.data() {
            assert!((v - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gradient_check_through_quadratic_loss() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let x = fedclust_tensor::init::randn([3, 2, 2, 2], &mut rng);
        let mut bn = BatchNorm2d::new(2);
        // Non-trivial affine params.
        bn.gamma.value.data_mut().copy_from_slice(&[1.5, 0.5]);
        bn.beta.value.data_mut().copy_from_slice(&[0.2, -0.3]);

        let y = bn.forward(x.clone(), true);
        let dx = bn.backward(y);

        let eps = 1e-2f32;
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| {
            let y = bn.forward(x.clone(), true);
            bn.cache = None; // discard training cache from probe
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        // Probing perturbs running stats; acceptable for a gradient check
        // since the loss path uses batch stats.
        let idx = [1usize, 0, 1, 1];
        let mut xp = x.clone();
        *xp.at_mut(&idx) += eps;
        let lp = loss(&mut bn, &xp);
        *xp.at_mut(&idx) -= 2.0 * eps;
        let lm = loss(&mut bn, &xp);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = dx.at(&idx);
        assert!(
            (numeric - analytic).abs() < 5e-2,
            "numeric {} analytic {}",
            numeric,
            analytic
        );
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full([2, 1, 2, 2], 10.0);
        bn.forward(x, true);
        let (mean, var) = bn.running_stats();
        assert!(mean[0] > 0.9 && mean[0] < 1.1); // 0.9*0 + 0.1*10
        assert!(var[0] < 1.0); // 0.9*1 + 0.1*0
    }
}
