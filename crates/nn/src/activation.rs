//! Activation layers.

use crate::layer::Layer;
use crate::param::Param;
use fedclust_tensor::Tensor;

/// Rectified linear unit, `y = max(x, 0)`, applied elementwise to any shape.
#[derive(Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Layer for Relu {
    fn forward(&mut self, mut x: Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        x.map_in_place(|v| v.max(0.0));
        x
    }

    fn backward(&mut self, mut grad_out: Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            // fedlint::allow(no-panic-paths): Layer contract — backward always follows a train-mode forward, which fills the cache
            .expect("relu backward called without cached forward");
        assert_eq!(mask.len(), grad_out.numel(), "relu mask/grad size mismatch");
        for (g, &m) in grad_out.data_mut().iter_mut().zip(&mask) {
            if !m {
                *g = 0.0;
            }
        }
        grad_out
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Hyperbolic tangent activation (used by the LeNet-5-style model to stay
/// close to the original architecture's character).
#[derive(Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Layer for Tanh {
    fn forward(&mut self, mut x: Tensor, train: bool) -> Tensor {
        x.map_in_place(f32::tanh);
        if train {
            self.cached_output = Some(x.clone());
        }
        x
    }

    fn backward(&mut self, mut grad_out: Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            // fedlint::allow(no-panic-paths): Layer contract — backward always follows a train-mode forward, which fills the cache
            .expect("tanh backward called without cached forward");
        for (g, &yv) in grad_out.data_mut().iter_mut().zip(y.data()) {
            *g *= 1.0 - yv * yv;
        }
        grad_out
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "tanh"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::default();
        let y = relu.forward(Tensor::from_vec([4], vec![-1.0, 0.0, 2.0, -0.5]), false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = Relu::default();
        relu.forward(Tensor::from_vec([4], vec![-1.0, 1.0, 2.0, -2.0]), true);
        let dx = relu.backward(Tensor::ones([4]));
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut tanh = Tanh::default();
        let x = Tensor::from_vec([3], vec![-0.7, 0.1, 1.3]);
        tanh.forward(x.clone(), true);
        let dx = tanh.backward(Tensor::ones([3]));
        let eps = 1e-3f32;
        for i in 0..3 {
            let num = ((x.data()[i] + eps).tanh() - (x.data()[i] - eps).tanh()) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_zero_boundary_blocks_gradient() {
        // At exactly 0 the subgradient choice is 0 (mask is v > 0).
        let mut relu = Relu::default();
        relu.forward(Tensor::from_vec([1], vec![0.0]), true);
        let dx = relu.backward(Tensor::ones([1]));
        assert_eq!(dx.data(), &[0.0]);
    }
}
