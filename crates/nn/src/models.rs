//! The model zoo: the architectures the paper evaluates, scaled to the
//! reproduction's 16×16 synthetic images (see DESIGN.md §2).
//!
//! * [`ModelSpec::Mlp`] — a small MLP, used for fast tests and benches;
//! * [`ModelSpec::LeNet5`] — LeNet-5-style CNN (conv-pool-conv-pool-fc³),
//!   the paper's model for CIFAR-10 / FMNIST / SVHN;
//! * [`ModelSpec::VggMini`] — 4 conv + 2 FC stack standing in for VGG16 in
//!   the Fig. 1 layer-wise distance observation study;
//! * [`ModelSpec::ResNet9`] — a ResNet-9-style residual network with batch
//!   norm, the paper's model for CIFAR-100.

use crate::activation::Relu;
use crate::conv2d::Conv2d;
use crate::dense::Dense;
use crate::layer::{Layer, Sequential};
use crate::model::Model;
use crate::norm::BatchNorm2d;
use crate::pool::{GlobalAvgPool2d, MaxPool2d};
use crate::structural::{Flatten, Residual};
use fedclust_tensor::conv::Conv2dGeom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which architecture to build. Serializable so experiment configs can name
/// their model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Multi-layer perceptron with one hidden width for both hidden layers.
    Mlp {
        /// Hidden layer width.
        hidden: usize,
    },
    /// LeNet-5-style CNN.
    LeNet5,
    /// VGG-mini: 4 conv + 2 FC, for the Fig. 1 observation study.
    VggMini,
    /// ResNet-9-style residual CNN with batch normalisation.
    ResNet9,
}

impl ModelSpec {
    /// Short tag used in experiment output.
    pub fn tag(&self) -> &'static str {
        match self {
            ModelSpec::Mlp { .. } => "mlp",
            ModelSpec::LeNet5 => "lenet5",
            ModelSpec::VggMini => "vgg-mini",
            ModelSpec::ResNet9 => "resnet9",
        }
    }

    /// Build the model for `(in_channels, height, width)` images and
    /// `num_classes` outputs, with weights drawn from `rng`.
    pub fn build(
        &self,
        in_channels: usize,
        height: usize,
        width: usize,
        num_classes: usize,
        rng: &mut impl Rng,
    ) -> Model {
        match self {
            ModelSpec::Mlp { hidden } => {
                mlp(in_channels * height * width, *hidden, num_classes, rng)
            }
            ModelSpec::LeNet5 => lenet5(in_channels, height, width, num_classes, rng),
            ModelSpec::VggMini => vgg_mini(in_channels, height, width, num_classes, rng),
            ModelSpec::ResNet9 => resnet9(in_channels, height, width, num_classes, rng),
        }
    }
}

fn geom(c: usize, h: usize, w: usize, k: usize, pad: usize) -> Conv2dGeom {
    Conv2dGeom {
        in_channels: c,
        in_h: h,
        in_w: w,
        k_h: k,
        k_w: k,
        stride: 1,
        pad,
    }
}

/// A two-hidden-layer MLP: `in → hidden → hidden → classes` with ReLU.
pub fn mlp(input_dim: usize, hidden: usize, num_classes: usize, rng: &mut impl Rng) -> Model {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Flatten::default()),
        Box::new(Dense::new(input_dim, hidden, rng)),
        Box::new(Relu::default()),
        Box::new(Dense::new(hidden, hidden, rng)),
        Box::new(Relu::default()),
        Box::new(Dense::new(hidden, num_classes, rng)),
    ];
    Model::new(layers, num_classes, "mlp")
}

/// LeNet-5-style CNN: two conv+pool feature stages and three fully
/// connected layers (the original's 120-84-10 head, scaled down).
pub fn lenet5(c: usize, h: usize, w: usize, num_classes: usize, rng: &mut impl Rng) -> Model {
    let g1 = geom(c, h, w, 3, 0);
    let (h1, w1) = (g1.out_h() / 2, g1.out_w() / 2);
    let g2 = geom(8, h1, w1, 3, 0);
    let (h2, w2) = (g2.out_h() / 2, g2.out_w() / 2);
    let flat = 16 * h2 * w2;
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(g1, 8, rng)),
        Box::new(Relu::default()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Conv2d::new(g2, 16, rng)),
        Box::new(Relu::default()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Flatten::default()),
        Box::new(Dense::new(flat, 48, rng)),
        Box::new(Relu::default()),
        Box::new(Dense::new(48, 24, rng)),
        Box::new(Relu::default()),
        Box::new(Dense::new(24, num_classes, rng)),
    ];
    Model::new(layers, num_classes, "lenet5")
}

/// VGG-mini: conv-conv-pool, conv-conv-pool, fc-fc. Its six parameter
/// blocks (4 conv + 2 FC) give the Fig. 1 study distinct "early conv",
/// "late conv", "hidden FC" and "final FC" layers to compare.
pub fn vgg_mini(c: usize, h: usize, w: usize, num_classes: usize, rng: &mut impl Rng) -> Model {
    let g1 = geom(c, h, w, 3, 1);
    let g2 = geom(8, g1.out_h(), g1.out_w(), 3, 1);
    let (h2, w2) = (g2.out_h() / 2, g2.out_w() / 2);
    let g3 = geom(8, h2, w2, 3, 1);
    let g4 = geom(16, g3.out_h(), g3.out_w(), 3, 1);
    let (h4, w4) = (g4.out_h() / 2, g4.out_w() / 2);
    let flat = 16 * h4 * w4;
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(g1, 8, rng)),
        Box::new(Relu::default()),
        Box::new(Conv2d::new(g2, 8, rng)),
        Box::new(Relu::default()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Conv2d::new(g3, 16, rng)),
        Box::new(Relu::default()),
        Box::new(Conv2d::new(g4, 16, rng)),
        Box::new(Relu::default()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Flatten::default()),
        Box::new(Dense::new(flat, 32, rng)),
        Box::new(Relu::default()),
        Box::new(Dense::new(32, num_classes, rng)),
    ];
    Model::new(layers, num_classes, "vgg-mini")
}

fn conv_bn_relu(c_in: usize, c_out: usize, h: usize, w: usize, rng: &mut impl Rng) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(geom(c_in, h, w, 3, 1), c_out, rng))
        .push(BatchNorm2d::new(c_out))
        .push(Relu::default())
}

/// ResNet-9-style network: conv-bn-relu stem, two down-sampling stages each
/// followed by a residual block, global average pooling, and a linear
/// classifier — the structure of the "ResNet-9" used by the paper for
/// CIFAR-100, with reduced widths (8/16/32).
pub fn resnet9(c: usize, h: usize, w: usize, num_classes: usize, rng: &mut impl Rng) -> Model {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    // Stem: c → 8 at full resolution.
    layers.push(Box::new(conv_bn_relu(c, 8, h, w, rng)));
    // Stage 1: 8 → 16, then pool to h/2.
    layers.push(Box::new(conv_bn_relu(8, 16, h, w, rng)));
    layers.push(Box::new(MaxPool2d::new(2)));
    let (h1, w1) = (h / 2, w / 2);
    // Residual block at 16 channels.
    let res1 = Sequential::new()
        .push_boxed(Box::new(conv_bn_relu(16, 16, h1, w1, rng)))
        .push_boxed(Box::new(conv_bn_relu(16, 16, h1, w1, rng)));
    layers.push(Box::new(Residual::new(res1)));
    // Stage 2: 16 → 32, pool to h/4.
    layers.push(Box::new(conv_bn_relu(16, 32, h1, w1, rng)));
    layers.push(Box::new(MaxPool2d::new(2)));
    let (h2, w2) = (h1 / 2, w1 / 2);
    // Residual block at 32 channels.
    let res2 = Sequential::new()
        .push_boxed(Box::new(conv_bn_relu(32, 32, h2, w2, rng)))
        .push_boxed(Box::new(conv_bn_relu(32, 32, h2, w2, rng)));
    layers.push(Box::new(Residual::new(res2)));
    // Head.
    layers.push(Box::new(GlobalAvgPool2d::default()));
    layers.push(Box::new(Dense::new(32, num_classes, rng)));
    Model::new(layers, num_classes, "resnet9")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_tensor::Tensor;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn mlp_shapes() {
        let mut m = mlp(3 * 16 * 16, 32, 10, &mut rng(0));
        let y = m.forward(Tensor::zeros([2, 3, 16, 16]), false);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn lenet5_shapes_and_blocks() {
        let mut m = lenet5(3, 16, 16, 10, &mut rng(1));
        let y = m.forward(Tensor::zeros([2, 3, 16, 16]), false);
        assert_eq!(y.dims(), &[2, 10]);
        // 2 conv + 3 fc parameter blocks.
        assert_eq!(m.param_blocks().len(), 5);
        // Final layer = classifier: 24 weights per class + bias.
        assert_eq!(m.final_layer_vec().len(), 24 * 10 + 10);
    }

    #[test]
    fn lenet5_single_channel() {
        let mut m = lenet5(1, 16, 16, 10, &mut rng(2));
        let y = m.forward(Tensor::zeros([1, 1, 16, 16]), false);
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn vgg_mini_has_six_blocks() {
        let m = vgg_mini(3, 16, 16, 10, &mut rng(3));
        assert_eq!(m.param_blocks().len(), 6);
    }

    #[test]
    fn vgg_mini_forward_shape() {
        let mut m = vgg_mini(3, 16, 16, 10, &mut rng(4));
        let y = m.forward(Tensor::zeros([2, 3, 16, 16]), false);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn resnet9_forward_and_state() {
        let mut m = resnet9(3, 16, 16, 20, &mut rng(5));
        let y = m.forward(Tensor::zeros([2, 3, 16, 16]), false);
        assert_eq!(y.dims(), &[2, 20]);
        // Batch-norm running stats are part of the state vector.
        assert!(m.extra_state_len() > 0);
        assert_eq!(m.state_len(), m.num_params() + m.extra_state_len());
        // State round-trips.
        let s = m.state_vec();
        let mut m2 = resnet9(3, 16, 16, 20, &mut rng(6));
        m2.set_state_vec(&s);
        assert_eq!(m2.state_vec(), s);
    }

    #[test]
    fn resnet9_trains_one_step() {
        let mut m = resnet9(3, 16, 16, 4, &mut rng(7));
        let mut opt = crate::optim::Sgd::new(crate::optim::SgdConfig::default());
        let x = fedclust_tensor::init::randn([4, 3, 16, 16], &mut rng(8));
        let loss = m.train_step(x, &[0, 1, 2, 3], &mut opt);
        assert!(loss.is_finite());
    }

    #[test]
    fn spec_builds_all_architectures() {
        for spec in [
            ModelSpec::Mlp { hidden: 16 },
            ModelSpec::LeNet5,
            ModelSpec::VggMini,
            ModelSpec::ResNet9,
        ] {
            let mut m = spec.build(3, 16, 16, 10, &mut rng(9));
            let y = m.forward(Tensor::zeros([1, 3, 16, 16]), false);
            assert_eq!(y.dims(), &[1, 10], "spec {:?}", spec);
        }
    }

    #[test]
    fn final_layer_is_small_fraction_of_model() {
        // The premise of FedClust's communication saving: the classifier
        // head is much smaller than the full model.
        let m = lenet5(3, 16, 16, 10, &mut rng(10));
        let fl = m.final_layer_vec().len();
        assert!(
            fl * 4 < m.num_params(),
            "final layer {} of {}",
            fl,
            m.num_params()
        );
    }
}
