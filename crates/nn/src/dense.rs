//! Fully connected (dense / linear) layer.

use crate::layer::Layer;
use crate::param::Param;
use fedclust_tensor::init::xavier_uniform;
use fedclust_tensor::matmul::{gemm_tn, matmul, matmul_nt};
use fedclust_tensor::Tensor;
use rand::Rng;

/// `y = x W^T + b` over a `(batch, in)` input, producing `(batch, out)`.
///
/// The weight is stored `(out, in)`, matching the usual "final layer
/// weights + bias" view the paper transmits for clustering.
#[derive(Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// New layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight = xavier_uniform([out_features, in_features], in_features, out_features, rng);
        Dense {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros([out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().ndim(), 2, "dense expects (batch, features)");
        assert_eq!(x.dims()[1], self.in_features, "dense input width mismatch");
        // y = x (B×in) * W^T (in×out) + b
        let mut y = matmul_nt(&x, &self.weight.value);
        let b = self.bias.value.data();
        let out = self.out_features;
        for row in y.data_mut().chunks_mut(out) {
            for (v, &bv) in row.iter_mut().zip(b) {
                *v += bv;
            }
        }
        if train {
            self.cached_input = Some(x);
        }
        y
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            // fedlint::allow(no-panic-paths): Layer contract — backward always follows a train-mode forward, which fills the cache
            .expect("dense backward called without cached forward");
        // dW += grad_out^T (out×B) * x (B×in), accumulated straight into the
        // weight gradient by the slice-level GEMM — no intermediate tensor.
        let batch = grad_out.dims()[0];
        gemm_tn(
            self.out_features,
            batch,
            self.in_features,
            grad_out.data(),
            x.data(),
            self.weight.grad.data_mut(),
        );
        // db = column sums of grad_out.
        let out = self.out_features;
        {
            let db = self.bias.grad.data_mut();
            for row in grad_out.data().chunks(out) {
                for (g, &v) in db.iter_mut().zip(row) {
                    *g += v;
                }
            }
        }
        // dx = grad_out (B×out) * W (out×in)
        matmul(&grad_out, &self.weight.value)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Central-difference gradient check of the dense layer through a simple
    /// quadratic loss `L = 0.5 * ||y||²` (so dL/dy = y).
    #[test]
    fn gradient_check() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = fedclust_tensor::init::randn([2, 4], &mut rng);

        let y = layer.forward(x.clone(), true);
        let dx = layer.backward(y.clone());

        let eps = 1e-3f32;
        // Check dL/dW numerically for a few entries.
        for &(i, j) in &[(0usize, 0usize), (2, 3), (1, 1)] {
            let probe = |delta: f32, layer: &mut Dense| {
                let idx = [i, j];
                let old = layer.weight.value.at(&idx);
                *layer.weight.value.at_mut(&idx) = old + delta;
                let y = layer.forward(x.clone(), false);
                *layer.weight.value.at_mut(&idx) = old;
                0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
            };
            let lp = probe(eps, &mut layer);
            let lm = probe(-eps, &mut layer);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = layer.weight.grad.at(&[i, j]);
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "dW[{},{}]: numeric {} analytic {}",
                i,
                j,
                numeric,
                analytic
            );
        }
        // Check dL/dx numerically for one entry.
        let (bi, fi) = (1usize, 2usize);
        let probe_x = |delta: f32, layer: &mut Dense| {
            let mut xp = x.clone();
            *xp.at_mut(&[bi, fi]) += delta;
            let y = layer.forward(xp, false);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let numeric = (probe_x(eps, &mut layer) - probe_x(-eps, &mut layer)) / (2.0 * eps);
        assert!((numeric - dx.at(&[bi, fi])).abs() < 2e-2);
    }

    #[test]
    fn bias_is_added_per_row() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let mut layer = Dense::new(2, 2, &mut rng);
        layer.weight.value.fill_zero();
        layer.bias.value.data_mut().copy_from_slice(&[1.0, -1.0]);
        let y = layer.forward(Tensor::zeros([3, 2]), false);
        for row in y.data().chunks(2) {
            assert_eq!(row, &[1.0, -1.0]);
        }
    }

    #[test]
    fn grad_accumulates_across_backwards() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones([1, 2]);
        for _ in 0..2 {
            let y = layer.forward(x.clone(), true);
            layer.backward(y);
        }
        let g1 = layer.weight.grad.clone();
        layer.zero_grad();
        let y = layer.forward(x.clone(), true);
        layer.backward(y);
        let g2 = layer.weight.grad.clone();
        // Two accumulated passes == 2 × one pass.
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((a - 2.0 * b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "without cached forward")]
    fn backward_without_forward_panics() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        let mut layer = Dense::new(2, 2, &mut rng);
        let _ = layer.backward(Tensor::zeros([1, 2]));
    }
}
