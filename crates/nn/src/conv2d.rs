//! 2-d convolution layer via batched im2col + GEMM.

use crate::layer::Layer;
use crate::param::Param;
use fedclust_tensor::conv::{col2im_batch_into, im2col_batch_into, Conv2dGeom};
use fedclust_tensor::init::he_normal;
use fedclust_tensor::matmul::{gemm_nn, gemm_nt, gemm_tn};
use fedclust_tensor::Tensor;
use rand::Rng;

/// A 2-d convolution over `(batch, C_in, H, W)` inputs producing
/// `(batch, C_out, OH, OW)`.
///
/// Weights are stored `(C_out, C_in·KH·KW)` — already in GEMM layout — with
/// a per-output-channel bias. The whole batch is lowered at once into a
/// single `(C_in·KH·KW, B·OH·OW)` column matrix, so forward and backward
/// each issue one large GEMM instead of `B` small ones. Both the column
/// matrix and the channel-major staging buffer are owned workspaces that
/// persist across steps, so steady-state training does no per-step
/// allocation for the lowering.
pub struct Conv2d {
    weight: Param,
    bias: Param,
    geom: Conv2dGeom,
    out_channels: usize,
    /// im2col workspace, `(C_in·KH·KW) × (B·OH·OW)`. After a training
    /// forward it doubles as the cached activation for backward, and during
    /// backward it is overwritten in place with the column gradient —
    /// peak memory holds one column matrix, never two.
    cols: Vec<f32>,
    /// Channel-major staging buffer, `C_out × (B·OH·OW)`: pre-bias GEMM
    /// output in forward, re-laid-out output gradient in backward.
    stage: Vec<f32>,
    /// Batch size the `cols` workspace caches from the last training
    /// forward; 0 when no activation cache is live.
    cached_batch: usize,
}

impl Conv2d {
    /// New conv layer with He-normal weights and zero bias.
    ///
    /// # Panics
    /// Panics if the geometry is invalid (kernel larger than padded input).
    pub fn new(geom: Conv2dGeom, out_channels: usize, rng: &mut impl Rng) -> Self {
        // fedlint::allow(no-panic-paths): documented panic — the # Panics section makes geometry validity a constructor precondition
        geom.validate().expect("invalid conv geometry");
        let fan_in = geom.col_rows();
        let weight = he_normal([out_channels, fan_in], fan_in, rng);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros([out_channels])),
            geom,
            out_channels,
            cols: Vec::new(),
            stage: Vec::new(),
            cached_batch: 0,
        }
    }

    /// The convolution geometry.
    pub fn geom(&self) -> &Conv2dGeom {
        &self.geom
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Shape of this layer's output for a batch of `b` images.
    pub fn out_shape(&self, b: usize) -> [usize; 4] {
        [b, self.out_channels, self.geom.out_h(), self.geom.out_w()]
    }
}

impl Clone for Conv2d {
    /// Clones parameters and geometry but not the workspaces: cloned layers
    /// (e.g. per-client model replicas in the FL engine) start with empty
    /// scratch and grow it on their first forward, instead of copying
    /// megabytes of transient buffers.
    fn clone(&self) -> Self {
        Conv2d {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            geom: self.geom,
            out_channels: self.out_channels,
            cols: Vec::new(),
            stage: Vec::new(),
            cached_batch: 0,
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let g = self.geom;
        assert_eq!(x.shape().ndim(), 4, "conv2d expects (batch, C, H, W)");
        assert_eq!(
            &x.dims()[1..],
            &[g.in_channels, g.in_h, g.in_w],
            "conv2d input geometry mismatch"
        );
        let batch = x.dims()[0];
        let (oh, ow) = (g.out_h(), g.out_w());
        let ocols = oh * ow;
        let n = batch * ocols;
        let rows = g.col_rows();

        // Lower the whole batch in one pass; every element is overwritten,
        // so the workspace needs no clearing.
        self.cols.resize(rows * n, 0.0);
        im2col_batch_into(x.data(), batch, &g, &mut self.cols);

        // One GEMM for the batch: (C_out × rows) · (rows × n).
        self.stage.clear();
        self.stage.resize(self.out_channels * n, 0.0);
        gemm_nn(
            self.out_channels,
            rows,
            n,
            self.weight.value.data(),
            &self.cols,
            &mut self.stage,
        );

        // Scatter channel-major GEMM output to (B, C_out, OH, OW), folding
        // in the bias.
        let mut out = vec![0.0f32; batch * self.out_channels * ocols];
        let bias = self.bias.value.data();
        for c in 0..self.out_channels {
            let src = &self.stage[c * n..(c + 1) * n];
            let bv = bias[c];
            for b in 0..batch {
                let dst = &mut out[b * self.out_channels * ocols + c * ocols..][..ocols];
                for (d, &s) in dst.iter_mut().zip(&src[b * ocols..(b + 1) * ocols]) {
                    *d = s + bv;
                }
            }
        }

        // The column matrix itself is the activation cache; an eval forward
        // overwrote it, so invalidate any cache it clobbered.
        self.cached_batch = if train { batch } else { 0 };
        Tensor::from_vec([batch, self.out_channels, oh, ow], out)
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let g = self.geom;
        let batch = grad_out.dims()[0];
        assert_eq!(
            self.cached_batch, batch,
            "conv2d backward called without matching cached training forward"
        );
        let (oh, ow) = (g.out_h(), g.out_w());
        let ocols = oh * ow;
        let n = batch * ocols;
        let rows = g.col_rows();

        // Re-lay (B, C_out, OH, OW) as channel-major (C_out × n) and take
        // the per-channel bias sums in the same pass.
        self.stage.resize(self.out_channels * n, 0.0);
        {
            let go = grad_out.data();
            let db = self.bias.grad.data_mut();
            for c in 0..self.out_channels {
                let dst = &mut self.stage[c * n..(c + 1) * n];
                let mut sum = 0.0f32;
                for b in 0..batch {
                    let src = &go[b * self.out_channels * ocols + c * ocols..][..ocols];
                    dst[b * ocols..(b + 1) * ocols].copy_from_slice(src);
                    sum += src.iter().sum::<f32>();
                }
                db[c] += sum;
            }
        }

        // dW += gmat (C_out×n) · colsᵀ (n×rows), accumulated straight into
        // the weight gradient. Must read `cols` before it is repurposed.
        gemm_nt(
            self.out_channels,
            n,
            rows,
            &self.stage,
            &self.cols,
            self.weight.grad.data_mut(),
        );

        // dcols = Wᵀ (rows×C_out) · gmat (C_out×n), written into the cols
        // workspace in place of the now-consumed activations.
        self.cols.fill(0.0);
        gemm_tn(
            rows,
            self.out_channels,
            n,
            self.weight.value.data(),
            &self.stage,
            &mut self.cols,
        );

        // Scatter-add the column gradient back to image layout.
        let in_sz = g.in_channels * g.in_h * g.in_w;
        let mut dx = vec![0.0f32; batch * in_sz];
        col2im_batch_into(&self.cols, batch, &g, &mut dx);

        self.cached_batch = 0;
        Tensor::from_vec([batch, g.in_channels, g.in_h, g.in_w], dx)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn geom(c: usize, h: usize, w: usize, k: usize) -> Conv2dGeom {
        Conv2dGeom {
            in_channels: c,
            in_h: h,
            in_w: w,
            k_h: k,
            k_w: k,
            stride: 1,
            pad: 0,
        }
    }

    #[test]
    fn forward_shape() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let mut conv = Conv2d::new(geom(3, 8, 8, 3), 5, &mut rng);
        let y = conv.forward(Tensor::zeros([2, 3, 8, 8]), false);
        assert_eq!(y.dims(), &[2, 5, 6, 6]);
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1 input channel, 1 output channel, 1x1 kernel with weight 1.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut conv = Conv2d::new(geom(1, 4, 4, 1), 1, &mut rng);
        conv.params_mut()[0].value.data_mut()[0] = 1.0;
        conv.params_mut()[1].value.fill_zero();
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|v| v as f32).collect());
        let y = conv.forward(x.clone(), false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_sum_kernel() {
        // 2x2 all-ones kernel sums each patch.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let mut conv = Conv2d::new(geom(1, 3, 3, 2), 1, &mut rng);
        for w in conv.params_mut()[0].value.data_mut() {
            *w = 1.0;
        }
        conv.params_mut()[1].value.fill_zero();
        let x = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(x, false);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn bias_shifts_every_output() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut conv = Conv2d::new(geom(1, 3, 3, 3), 2, &mut rng);
        conv.params_mut()[0].value.fill_zero();
        conv.params_mut()[1]
            .value
            .data_mut()
            .copy_from_slice(&[2.5, -1.5]);
        let y = conv.forward(Tensor::zeros([1, 1, 3, 3]), false);
        assert_eq!(y.data(), &[2.5, -1.5]);
    }

    /// The batched forward must agree with an explicit per-image reference
    /// convolution to tight tolerance, across strides and paddings.
    #[test]
    fn batched_forward_matches_per_image_reference() {
        use fedclust_tensor::conv::im2col;
        use fedclust_tensor::matmul::matmul;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for &(b, c, h, w, k, s, p, co) in &[
            (3usize, 2usize, 6, 6, 3, 1, 1, 4usize),
            (2, 3, 5, 5, 3, 2, 0, 2),
            (4, 1, 7, 7, 5, 1, 2, 3),
        ] {
            let g = Conv2dGeom {
                in_channels: c,
                in_h: h,
                in_w: w,
                k_h: k,
                k_w: k,
                stride: s,
                pad: p,
            };
            let mut conv = Conv2d::new(g, co, &mut rng);
            let x = fedclust_tensor::init::randn([b, c, h, w], &mut rng);
            let y = conv.forward(x.clone(), false);
            let ocols = g.col_cols();
            let chw = c * h * w;
            for bi in 0..b {
                let img = Tensor::from_vec([c, h, w], x.data()[bi * chw..(bi + 1) * chw].to_vec());
                let yref = matmul(&conv.weight.value, &im2col(&img, &g));
                for ci in 0..co {
                    let bias = conv.bias.value.data()[ci];
                    for j in 0..ocols {
                        let got = y.data()[bi * co * ocols + ci * ocols + j];
                        let want = yref.at(&[ci, j]) + bias;
                        assert!(
                            (got - want).abs() <= 1e-4,
                            "shape {:?} b={} c={} j={}: {} vs {}",
                            (b, c, h, w, k, s, p, co),
                            bi,
                            ci,
                            j,
                            got,
                            want
                        );
                    }
                }
            }
        }
    }

    /// Workspaces are reused across steps (no growth after the first) and
    /// cleared by `clone`, and backward consumes the activation cache.
    #[test]
    fn workspaces_recycle_and_clone_resets() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let g = Conv2dGeom {
            in_channels: 2,
            in_h: 6,
            in_w: 6,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let mut conv = Conv2d::new(g, 4, &mut rng);
        let x = fedclust_tensor::init::randn([3, 2, 6, 6], &mut rng);
        let y = conv.forward(x.clone(), true);
        assert_eq!(conv.cached_batch, 3);
        let (cols_cap, stage_cap) = (conv.cols.capacity(), conv.stage.capacity());
        conv.backward(y);
        assert_eq!(conv.cached_batch, 0, "backward must release the cache");
        for _ in 0..3 {
            let y = conv.forward(x.clone(), true);
            conv.backward(y);
        }
        assert_eq!(conv.cols.capacity(), cols_cap, "cols workspace reallocated");
        assert_eq!(
            conv.stage.capacity(),
            stage_cap,
            "stage workspace reallocated"
        );

        let replica = conv.clone();
        assert!(replica.cols.is_empty() && replica.stage.is_empty());
        assert_eq!(replica.cached_batch, 0);
        assert_eq!(replica.weight.value.data(), conv.weight.value.data());
    }

    #[test]
    #[should_panic(expected = "without matching cached training forward")]
    fn eval_forward_invalidates_training_cache() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(10);
        let mut conv = Conv2d::new(geom(1, 4, 4, 3), 2, &mut rng);
        let x = Tensor::zeros([2, 1, 4, 4]);
        let y = conv.forward(x.clone(), true);
        // The eval forward clobbers the shared column workspace; backward
        // must refuse rather than produce silently wrong gradients.
        let _ = conv.forward(x, false);
        let _ = conv.backward(y);
    }

    /// Gradient check through L = 0.5·||y||².
    #[test]
    fn gradient_check() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let g = Conv2dGeom {
            in_channels: 2,
            in_h: 5,
            in_w: 5,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let mut conv = Conv2d::new(g, 3, &mut rng);
        let x = fedclust_tensor::init::randn([2, 2, 5, 5], &mut rng);

        let y = conv.forward(x.clone(), true);
        let dx = conv.backward(y);

        let eps = 1e-2f32;
        let loss = |conv: &mut Conv2d, x: &Tensor| {
            let y = conv.forward(x.clone(), false);
            0.5 * y
                .data()
                .iter()
                .map(|v| (*v as f64) * (*v as f64))
                .sum::<f64>() as f32
        };
        // Weight gradient spot checks.
        for &(i, j) in &[(0usize, 0usize), (2, 7), (1, 17)] {
            let old = conv.weight.value.at(&[i, j]);
            *conv.weight.value.at_mut(&[i, j]) = old + eps;
            let lp = loss(&mut conv, &x);
            *conv.weight.value.at_mut(&[i, j]) = old - eps;
            let lm = loss(&mut conv, &x);
            *conv.weight.value.at_mut(&[i, j]) = old;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.weight.grad.at(&[i, j]);
            let scale = analytic.abs().max(1.0);
            assert!(
                (numeric - analytic).abs() / scale < 5e-2,
                "dW[{},{}]: numeric {} analytic {}",
                i,
                j,
                numeric,
                analytic
            );
        }
        // Input gradient spot check.
        let idx = [1usize, 1, 2, 3];
        let mut xp = x.clone();
        *xp.at_mut(&idx) += eps;
        let lp = loss(&mut conv, &xp);
        *xp.at_mut(&idx) -= 2.0 * eps;
        let lm = loss(&mut conv, &xp);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = dx.at(&idx);
        assert!(
            (numeric - analytic).abs() / analytic.abs().max(1.0) < 5e-2,
            "dx: numeric {} analytic {}",
            numeric,
            analytic
        );
    }
}
