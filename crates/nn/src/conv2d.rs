//! 2-d convolution layer via im2col + GEMM.

use crate::layer::Layer;
use crate::param::Param;
use fedclust_tensor::conv::{col2im, im2col, Conv2dGeom};
use fedclust_tensor::init::he_normal;
use fedclust_tensor::matmul::{matmul, matmul_tn};
use fedclust_tensor::Tensor;
use rand::Rng;

/// A 2-d convolution over `(batch, C_in, H, W)` inputs producing
/// `(batch, C_out, OH, OW)`.
///
/// Weights are stored `(C_out, C_in·KH·KW)` — already in GEMM layout — with
/// a per-output-channel bias. Forward lowers each image with `im2col` and
/// multiplies; backward uses the adjoint `col2im` scatter.
#[derive(Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    geom: Conv2dGeom,
    out_channels: usize,
    cached_cols: Vec<Tensor>,
}

impl Conv2d {
    /// New conv layer with He-normal weights and zero bias.
    ///
    /// # Panics
    /// Panics if the geometry is invalid (kernel larger than padded input).
    pub fn new(geom: Conv2dGeom, out_channels: usize, rng: &mut impl Rng) -> Self {
        geom.validate().expect("invalid conv geometry");
        let fan_in = geom.col_rows();
        let weight = he_normal([out_channels, fan_in], fan_in, rng);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros([out_channels])),
            geom,
            out_channels,
            cached_cols: Vec::new(),
        }
    }

    /// The convolution geometry.
    pub fn geom(&self) -> &Conv2dGeom {
        &self.geom
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Shape of this layer's output for a batch of `b` images.
    pub fn out_shape(&self, b: usize) -> [usize; 4] {
        [b, self.out_channels, self.geom.out_h(), self.geom.out_w()]
    }

    fn image(&self, x: &Tensor, b: usize) -> Tensor {
        let g = &self.geom;
        let sz = g.in_channels * g.in_h * g.in_w;
        Tensor::from_vec(
            [g.in_channels, g.in_h, g.in_w],
            x.data()[b * sz..(b + 1) * sz].to_vec(),
        )
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let g = self.geom;
        assert_eq!(x.shape().ndim(), 4, "conv2d expects (batch, C, H, W)");
        assert_eq!(
            &x.dims()[1..],
            &[g.in_channels, g.in_h, g.in_w],
            "conv2d input geometry mismatch"
        );
        let batch = x.dims()[0];
        let (oh, ow) = (g.out_h(), g.out_w());
        let ocols = oh * ow;
        let mut out = vec![0.0f32; batch * self.out_channels * ocols];
        if train {
            self.cached_cols.clear();
        }
        for b in 0..batch {
            let img = self.image(&x, b);
            let cols = im2col(&img, &g);
            // (C_out × rows) * (rows × ocols)
            let y = matmul(&self.weight.value, &cols);
            let dst = &mut out[b * self.out_channels * ocols..(b + 1) * self.out_channels * ocols];
            dst.copy_from_slice(y.data());
            for (c, chunk) in dst.chunks_mut(ocols).enumerate() {
                let bv = self.bias.value.data()[c];
                for v in chunk.iter_mut() {
                    *v += bv;
                }
            }
            if train {
                self.cached_cols.push(cols);
            }
        }
        Tensor::from_vec([batch, self.out_channels, oh, ow], out)
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let g = self.geom;
        let batch = grad_out.dims()[0];
        assert_eq!(
            self.cached_cols.len(),
            batch,
            "conv2d backward called without matching cached forward"
        );
        let (oh, ow) = (g.out_h(), g.out_w());
        let ocols = oh * ow;
        let in_sz = g.in_channels * g.in_h * g.in_w;
        let mut dx = vec![0.0f32; batch * in_sz];
        for b in 0..batch {
            let gslice = &grad_out.data()
                [b * self.out_channels * ocols..(b + 1) * self.out_channels * ocols];
            let gmat = Tensor::from_vec([self.out_channels, ocols], gslice.to_vec());
            let cols = &self.cached_cols[b];
            // dW += gmat (C_out×ocols) * cols^T (ocols×rows)
            let dw = matmul(&gmat, &cols.transpose2());
            self.weight.grad.axpy(1.0, &dw);
            // db += per-channel sums.
            {
                let db = self.bias.grad.data_mut();
                for (c, chunk) in gslice.chunks(ocols).enumerate() {
                    db[c] += chunk.iter().sum::<f32>();
                }
            }
            // dcols = W^T (rows×C_out) * gmat — via matmul_tn on (C_out×rows).
            let dcols = matmul_tn(&self.weight.value, &gmat);
            let dimg = col2im(&dcols, &g);
            dx[b * in_sz..(b + 1) * in_sz].copy_from_slice(dimg.data());
        }
        self.cached_cols.clear();
        Tensor::from_vec([batch, g.in_channels, g.in_h, g.in_w], dx)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn geom(c: usize, h: usize, w: usize, k: usize) -> Conv2dGeom {
        Conv2dGeom {
            in_channels: c,
            in_h: h,
            in_w: w,
            k_h: k,
            k_w: k,
            stride: 1,
            pad: 0,
        }
    }

    #[test]
    fn forward_shape() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let mut conv = Conv2d::new(geom(3, 8, 8, 3), 5, &mut rng);
        let y = conv.forward(Tensor::zeros([2, 3, 8, 8]), false);
        assert_eq!(y.dims(), &[2, 5, 6, 6]);
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1 input channel, 1 output channel, 1x1 kernel with weight 1.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut conv = Conv2d::new(geom(1, 4, 4, 1), 1, &mut rng);
        conv.params_mut()[0].value.data_mut()[0] = 1.0;
        conv.params_mut()[1].value.fill_zero();
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|v| v as f32).collect());
        let y = conv.forward(x.clone(), false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_sum_kernel() {
        // 2x2 all-ones kernel sums each patch.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let mut conv = Conv2d::new(geom(1, 3, 3, 2), 1, &mut rng);
        for w in conv.params_mut()[0].value.data_mut() {
            *w = 1.0;
        }
        conv.params_mut()[1].value.fill_zero();
        let x = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(x, false);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn bias_shifts_every_output() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut conv = Conv2d::new(geom(1, 3, 3, 3), 2, &mut rng);
        conv.params_mut()[0].value.fill_zero();
        conv.params_mut()[1].value.data_mut().copy_from_slice(&[2.5, -1.5]);
        let y = conv.forward(Tensor::zeros([1, 1, 3, 3]), false);
        assert_eq!(y.data(), &[2.5, -1.5]);
    }

    /// Gradient check through L = 0.5·||y||².
    #[test]
    fn gradient_check() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let g = Conv2dGeom {
            in_channels: 2,
            in_h: 5,
            in_w: 5,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let mut conv = Conv2d::new(g, 3, &mut rng);
        let x = fedclust_tensor::init::randn([2, 2, 5, 5], &mut rng);

        let y = conv.forward(x.clone(), true);
        let dx = conv.backward(y);

        let eps = 1e-2f32;
        let loss = |conv: &mut Conv2d, x: &Tensor| {
            let y = conv.forward(x.clone(), false);
            0.5 * y.data().iter().map(|v| (*v as f64) * (*v as f64)).sum::<f64>() as f32
        };
        // Weight gradient spot checks.
        for &(i, j) in &[(0usize, 0usize), (2, 7), (1, 17)] {
            let old = conv.weight.value.at(&[i, j]);
            *conv.weight.value.at_mut(&[i, j]) = old + eps;
            let lp = loss(&mut conv, &x);
            *conv.weight.value.at_mut(&[i, j]) = old - eps;
            let lm = loss(&mut conv, &x);
            *conv.weight.value.at_mut(&[i, j]) = old;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.weight.grad.at(&[i, j]);
            let scale = analytic.abs().max(1.0);
            assert!(
                (numeric - analytic).abs() / scale < 5e-2,
                "dW[{},{}]: numeric {} analytic {}",
                i,
                j,
                numeric,
                analytic
            );
        }
        // Input gradient spot check.
        let idx = [1usize, 1, 2, 3];
        let mut xp = x.clone();
        *xp.at_mut(&idx) += eps;
        let lp = loss(&mut conv, &xp);
        *xp.at_mut(&idx) -= 2.0 * eps;
        let lm = loss(&mut conv, &xp);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = dx.at(&idx);
        assert!(
            (numeric - analytic).abs() / analytic.abs().max(1.0) < 5e-2,
            "dx: numeric {} analytic {}",
            numeric,
            analytic
        );
    }
}
