//! Stochastic gradient descent with momentum, weight decay, and the FedProx
//! proximal term.

use crate::param::Param;
use fedclust_tensor::Tensor;

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
        }
    }
}

/// SGD optimizer state. Velocity buffers are allocated lazily per parameter
/// on the first step, so one `Sgd` can only ever drive one model instance.
///
/// The optional proximal term implements FedProx's local objective
/// `F_i(w) + (μ/2)·‖w − w_global‖²`, whose gradient contribution is
/// `μ·(w − w_global)`.
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Tensor>,
    prox: Option<ProxTerm>,
}

struct ProxTerm {
    mu: f32,
    reference: Vec<Tensor>,
}

impl Sgd {
    /// New optimizer with the given hyper-parameters.
    pub fn new(config: SgdConfig) -> Self {
        Sgd {
            config,
            velocity: Vec::new(),
            prox: None,
        }
    }

    /// Current hyper-parameters.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Change the learning rate (used by decaying schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Attach a FedProx proximal term anchored at `reference` weights
    /// (one tensor per parameter, same order as the model's params).
    pub fn set_prox(&mut self, mu: f32, reference: Vec<Tensor>) {
        self.prox = Some(ProxTerm { mu, reference });
    }

    /// Remove the proximal term.
    pub fn clear_prox(&mut self) {
        self.prox = None;
    }

    /// Apply one SGD step to `params` using their accumulated gradients,
    /// then zero the gradients.
    ///
    /// # Panics
    /// Panics if the parameter list changes shape/order between steps, or if
    /// a proximal reference does not match the parameters.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().clone()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "parameter count changed between optimizer steps"
        );
        if let Some(prox) = &self.prox {
            assert_eq!(
                prox.reference.len(),
                params.len(),
                "proximal reference does not match parameter count"
            );
        }
        for (i, p) in params.iter_mut().enumerate() {
            let v = &mut self.velocity[i];
            assert_eq!(
                v.shape(),
                p.value.shape(),
                "parameter shape changed between optimizer steps"
            );
            let wd = self.config.weight_decay;
            let mu_ref = self.prox.as_ref().map(|pr| (pr.mu, &pr.reference[i]));
            let m = self.config.momentum;
            let lr = self.config.lr;
            let n = p.value.numel();
            for j in 0..n {
                let mut g = p.grad.data()[j];
                // fedlint::allow(float-eq): exact-zero sentinel — wd == 0.0 means "weight decay disabled", set only from the literal default
                if wd != 0.0 {
                    g += wd * p.value.data()[j];
                }
                if let Some((mu, r)) = mu_ref {
                    g += mu * (p.value.data()[j] - r.data()[j]);
                }
                let vel = m * v.data()[j] + g;
                v.data_mut()[j] = vel;
                p.value.data_mut()[j] -= lr * vel;
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(vals: &[f32]) -> Param {
        Param::new(Tensor::from_vec([vals.len()], vals.to_vec()))
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut sgd = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        let mut p = param(&[1.0]);
        p.grad.data_mut()[0] = 2.0;
        sgd.step(&mut [&mut p]);
        assert!((p.value.data()[0] - 0.8).abs() < 1e-6);
        assert_eq!(p.grad.data()[0], 0.0, "grad must be zeroed after step");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut sgd = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.5,
            weight_decay: 0.0,
        });
        let mut p = param(&[0.0]);
        // Two steps with constant gradient 1: v1=1, v2=1.5.
        p.grad.data_mut()[0] = 1.0;
        sgd.step(&mut [&mut p]);
        p.grad.data_mut()[0] = 1.0;
        sgd.step(&mut [&mut p]);
        assert!((p.value.data()[0] - (-0.1 - 0.15)).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut sgd = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.1,
        });
        let mut p = param(&[1.0]);
        sgd.step(&mut [&mut p]);
        assert!((p.value.data()[0] - 0.99).abs() < 1e-6);
    }

    #[test]
    fn proximal_term_pulls_toward_reference() {
        let mut sgd = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        sgd.set_prox(1.0, vec![Tensor::from_vec([1], vec![0.0])]);
        let mut p = param(&[1.0]);
        // grad = 0 + μ(w − ref) = 1 → w ← 1 − 0.1 = 0.9.
        sgd.step(&mut [&mut p]);
        assert!((p.value.data()[0] - 0.9).abs() < 1e-6);
        sgd.clear_prox();
        sgd.step(&mut [&mut p]);
        assert!(
            (p.value.data()[0] - 0.9).abs() < 1e-6,
            "no force after clear"
        );
    }

    #[test]
    fn converges_on_quadratic_bowl() {
        // minimise f(w) = 0.5(w-3)², gradient w-3.
        let mut sgd = Sgd::new(SgdConfig {
            lr: 0.2,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        let mut p = param(&[0.0]);
        for _ in 0..100 {
            let g = p.value.data()[0] - 3.0;
            p.grad.data_mut()[0] = g;
            sgd.step(&mut [&mut p]);
        }
        assert!((p.value.data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn changing_param_count_panics() {
        let mut sgd = Sgd::new(SgdConfig::default());
        let mut p1 = param(&[0.0]);
        sgd.step(&mut [&mut p1]);
        let mut p2 = param(&[0.0]);
        sgd.step(&mut [&mut p1, &mut p2]);
    }
}
