//! Structural layers: flatten and residual blocks.

use crate::layer::{Layer, Sequential};
use crate::param::Param;
use fedclust_tensor::Tensor;

/// Flatten `(batch, …)` to `(batch, prod(rest))`.
#[derive(Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Layer for Flatten {
    fn forward(&mut self, mut x: Tensor, train: bool) -> Tensor {
        assert!(x.shape().ndim() >= 2, "flatten expects a batch dimension");
        let b = x.dims()[0];
        let rest: usize = x.dims()[1..].iter().product();
        if train {
            self.cached_dims = Some(x.dims().to_vec());
        }
        x.reshape_in_place([b, rest]);
        x
    }

    fn backward(&mut self, mut grad_out: Tensor) -> Tensor {
        let dims = self
            .cached_dims
            .take()
            // fedlint::allow(no-panic-paths): Layer contract — backward always follows a train-mode forward, which fills the cache
            .expect("flatten backward called without cached forward");
        grad_out.reshape_in_place(dims);
        grad_out
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// A residual block: `y = body(x) + x`.
///
/// The body must preserve the input shape (as in ResNet-9's two 3×3
/// same-channel convolutions). The skip connection is the identity.
#[derive(Clone)]
pub struct Residual {
    body: Sequential,
}

impl Residual {
    /// Wrap a shape-preserving body.
    pub fn new(body: Sequential) -> Self {
        Residual { body }
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let y = self.body.forward(x.clone(), train);
        assert_eq!(
            y.dims(),
            x.dims(),
            "residual body must preserve shape ({} vs {})",
            y.shape(),
            x.shape()
        );
        &y + &x
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        // d/dx [body(x) + x] = body'(x) + I.
        let through_body = self.body.backward(grad_out.clone());
        &through_body + &grad_out
    }

    fn params(&self) -> Vec<&Param> {
        self.body.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.body.params_mut()
    }

    fn name(&self) -> &'static str {
        "residual"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn extra_state(&self) -> Vec<f32> {
        self.body.extra_state()
    }

    fn extra_state_len(&self) -> usize {
        self.body.extra_state_len()
    }

    fn set_extra_state(&mut self, state: &[f32]) {
        self.body.set_extra_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use rand::SeedableRng;

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::default();
        let x = Tensor::zeros([2, 3, 4, 4]);
        let y = f.forward(x, true);
        assert_eq!(y.dims(), &[2, 48]);
        let dx = f.backward(Tensor::zeros([2, 48]));
        assert_eq!(dx.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn residual_identity_body_doubles_input() {
        // Empty body = identity, so y = 2x.
        let mut r = Residual::new(Sequential::new());
        let x = Tensor::from_vec([1, 2], vec![1.0, -3.0]);
        let y = r.forward(x, false);
        assert_eq!(y.data(), &[2.0, -6.0]);
    }

    #[test]
    fn residual_gradient_includes_skip_path() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let body = Sequential::new()
            .push(Dense::new(3, 3, &mut rng))
            .push(Relu::default());
        let mut r = Residual::new(body);
        let x = fedclust_tensor::init::randn([2, 3], &mut rng);
        let y = r.forward(x.clone(), true);
        let dx = r.backward(y.clone());

        // Numeric check through L = 0.5||y||².
        let eps = 1e-3f32;
        let idx = [0usize, 1usize];
        let mut loss = |xp: &Tensor| {
            let y = r.forward(xp.clone(), true);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let mut xp = x.clone();
        *xp.at_mut(&idx) += eps;
        let lp = loss(&xp);
        *xp.at_mut(&idx) -= 2.0 * eps;
        let lm = loss(&xp);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - dx.at(&idx)).abs() < 5e-2,
            "numeric {} analytic {}",
            numeric,
            dx.at(&idx)
        );
    }

    #[test]
    #[should_panic(expected = "must preserve shape")]
    fn residual_rejects_shape_changing_body() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut r = Residual::new(Sequential::new().push(Dense::new(3, 4, &mut rng)));
        let _ = r.forward(Tensor::zeros([1, 3]), false);
    }
}
