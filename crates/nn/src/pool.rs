//! Spatial pooling layers.

use crate::layer::Layer;
use crate::param::Param;
use fedclust_tensor::Tensor;

/// Non-overlapping max pooling over `(batch, C, H, W)` with a square window.
/// Trailing rows/columns that do not fill a window are dropped (floor
/// semantics, like PyTorch's default).
#[derive(Clone)]
pub struct MaxPool2d {
    k: usize,
    cached_argmax: Option<(Vec<usize>, Vec<usize>)>, // (argmax flat indices, input dims)
}

impl MaxPool2d {
    /// New pool with window and stride `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        MaxPool2d {
            k,
            cached_argmax: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().ndim(), 4, "maxpool expects (batch, C, H, W)");
        let (b, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let k = self.k;
        let (oh, ow) = (h / k, w / k);
        assert!(
            oh > 0 && ow > 0,
            "pool window {} larger than input {}x{}",
            k,
            h,
            w
        );
        let mut out = vec![0.0f32; b * c * oh * ow];
        let mut argmax = vec![0usize; b * c * oh * ow];
        let data = x.data();
        for bc in 0..b * c {
            let plane = &data[bc * h * w..(bc + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..k {
                        for dx in 0..k {
                            let iy = oy * k + dy;
                            let ix = ox * k + dx;
                            let v = plane[iy * w + ix];
                            if v > best {
                                best = v;
                                best_idx = bc * h * w + iy * w + ix;
                            }
                        }
                    }
                    let o = bc * oh * ow + oy * ow + ox;
                    out[o] = best;
                    argmax[o] = best_idx;
                }
            }
        }
        if train {
            self.cached_argmax = Some((argmax, vec![b, c, h, w]));
        }
        Tensor::from_vec([b, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let (argmax, dims) = self
            .cached_argmax
            .take()
            // fedlint::allow(no-panic-paths): Layer contract — backward always follows a train-mode forward, which fills the cache
            .expect("maxpool backward called without cached forward");
        let mut dx = Tensor::zeros(dims);
        let dxd = dx.data_mut();
        for (g, &idx) in grad_out.data().iter().zip(&argmax) {
            dxd[idx] += g;
        }
        dx
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling: `(batch, C, H, W)` → `(batch, C)`.
#[derive(Clone, Default)]
pub struct GlobalAvgPool2d {
    cached_dims: Option<Vec<usize>>,
}

impl Layer for GlobalAvgPool2d {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        assert_eq!(
            x.shape().ndim(),
            4,
            "global avgpool expects (batch, C, H, W)"
        );
        let (b, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let inv = 1.0 / (h * w) as f32;
        let mut out = vec![0.0f32; b * c];
        for (bc, o) in out.iter_mut().enumerate() {
            *o = x.data()[bc * h * w..(bc + 1) * h * w].iter().sum::<f32>() * inv;
        }
        if train {
            self.cached_dims = Some(x.dims().to_vec());
        }
        Tensor::from_vec([b, c], out)
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let dims = self
            .cached_dims
            .take()
            // fedlint::allow(no-panic-paths): Layer contract — backward always follows a train-mode forward, which fills the cache
            .expect("global avgpool backward called without cached forward");
        let (h, w) = (dims[2], dims[3]);
        let inv = 1.0 / (h * w) as f32;
        let mut dx = Tensor::zeros(dims.clone());
        for (bc, &g) in grad_out.data().iter().enumerate() {
            for v in &mut dx.data_mut()[bc * h * w..(bc + 1) * h * w] {
                *v = g * inv;
            }
        }
        dx
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "globalavgpool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_maxima() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let y = pool.forward(x, false);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 9.0, 2.0, 3.0]);
        pool.forward(x, true);
        let dx = pool.backward(Tensor::from_vec([1, 1, 1, 1], vec![5.0]));
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_floor_semantics_drop_trailing() {
        let mut pool = MaxPool2d::new(2);
        let y = pool.forward(Tensor::zeros([1, 1, 5, 5]), false);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn global_avgpool_averages_planes() {
        let mut pool = GlobalAvgPool2d::default();
        let x = Tensor::from_vec([1, 2, 2, 2], vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let y = pool.forward(x, false);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn global_avgpool_backward_distributes_evenly() {
        let mut pool = GlobalAvgPool2d::default();
        pool.forward(Tensor::zeros([1, 1, 2, 2]), true);
        let dx = pool.backward(Tensor::from_vec([1, 1], vec![4.0]));
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }
}
