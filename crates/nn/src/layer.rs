//! The object-safe layer trait and sequential composition.

use crate::param::Param;
use fedclust_tensor::Tensor;

/// A neural-network layer with explicit forward and backward passes.
///
/// Contract:
/// * `forward` consumes the input batch and caches whatever the backward
///   pass needs (inputs, masks, …) when `train` is true;
/// * `backward` consumes the gradient wrt the layer output and returns the
///   gradient wrt the layer input, *accumulating* parameter gradients into
///   [`Param::grad`];
/// * `backward` must only be called after a `forward(…, train=true)` on the
///   same layer instance.
pub trait Layer: Send + Sync {
    /// Forward pass over a batch. `train` enables caching for backward and
    /// training-mode behaviour (e.g. batch-norm batch statistics).
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor;

    /// Backward pass: gradient wrt output in, gradient wrt input out.
    fn backward(&mut self, grad_out: Tensor) -> Tensor;

    /// Immutable views of the layer's trainable parameters (possibly empty).
    fn params(&self) -> Vec<&Param>;

    /// Mutable views of the layer's trainable parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// A short human-readable layer kind, e.g. `"conv2d"`.
    fn name(&self) -> &'static str;

    /// Clone into a boxed trait object (layers are plain data, so all
    /// implementations derive `Clone` and forward to it).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Zero all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars in this layer.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Non-trainable state that must still be synchronised in federated
    /// aggregation (batch-norm running statistics). Default: none.
    fn extra_state(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Length of [`Layer::extra_state`]. Default: 0.
    fn extra_state_len(&self) -> usize {
        0
    }

    /// Overwrite the non-trainable state. Default: no-op; implementations
    /// must accept exactly `extra_state_len()` values.
    fn set_extra_state(&mut self, _state: &[f32]) {}
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A sequential stack of layers, itself a [`Layer`].
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    pub fn push_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrow the layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutably borrow the layers.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }
}

impl Layer for Sequential {
    fn forward(&mut self, mut x: Tensor, train: bool) -> Tensor {
        for layer in &mut self.layers {
            x = layer.forward(x, train);
        }
        x
    }

    fn backward(&mut self, mut grad: Tensor) -> Tensor {
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(grad);
        }
        grad
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn extra_state(&self) -> Vec<f32> {
        self.layers.iter().flat_map(|l| l.extra_state()).collect()
    }

    fn extra_state_len(&self) -> usize {
        self.layers.iter().map(|l| l.extra_state_len()).sum()
    }

    fn set_extra_state(&mut self, state: &[f32]) {
        let mut off = 0;
        for layer in &mut self.layers {
            let n = layer.extra_state_len();
            if n > 0 {
                layer.set_extra_state(&state[off..off + n]);
            }
            off += n;
        }
        assert_eq!(off, state.len(), "extra state length mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use rand::SeedableRng;

    #[test]
    fn sequential_composes_forward() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let mut seq = Sequential::new()
            .push(Dense::new(3, 4, &mut rng))
            .push(Relu::default())
            .push(Dense::new(4, 2, &mut rng));
        let out = seq.forward(Tensor::zeros([5, 3]), false);
        assert_eq!(out.dims(), &[5, 2]);
        assert_eq!(seq.len(), 3);
        // Two dense layers × (weight + bias).
        assert_eq!(seq.params().len(), 4);
        assert_eq!(seq.param_count(), 3 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn boxed_clone_is_independent() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let seq = Sequential::new().push(Dense::new(2, 2, &mut rng));
        let mut copy = seq.clone();
        copy.params_mut()[0].value.scale(0.0);
        // Original untouched.
        assert!(seq.params()[0].value.data().iter().any(|&x| x != 0.0));
    }
}
