//! Trainable parameters: a value tensor paired with its gradient.

use fedclust_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter. The gradient always has the same shape as the
/// value and is *accumulated* by layer backward passes; optimizers and
/// `zero_grad` reset it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current weight values.
    pub value: Tensor,
    /// Accumulated gradient of the loss wrt `value`.
    pub grad: Tensor,
}

impl Param {
    /// Wrap an initial value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad }
    }

    /// Number of scalar weights.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Reset the gradient to zero, keeping the allocation.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_of_same_shape() {
        let p = Param::new(Tensor::ones([2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert!(p.grad.data().iter().all(|&x| x == 0.0));
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut p = Param::new(Tensor::ones([4]));
        p.grad.data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&x| x == 0.0));
    }
}
