//! Parameter-addressable model wrapper.
//!
//! [`Model`] owns a stack of layers and exposes the *views of its weights*
//! that federated learning needs:
//!
//! * `param_vec` / `set_param_vec` — all trainable weights as one flat
//!   vector (what FedAvg averages and what clients upload),
//! * `state_vec` / `set_state_vec` — trainable weights plus non-trainable
//!   state (batch-norm running statistics), the full payload a client
//!   synchronises with its server model,
//! * `param_blocks` — per-top-level-layer offsets into the parameter
//!   vector, used by LG-FedAvg's local/global split and by the Fig. 1
//!   layer-wise distance study,
//! * `final_layer_vec` — the weights + bias of the last parameterised
//!   layer: the "strategically selected partial weights" FedClust clusters
//!   clients on.

use crate::layer::Layer;
use crate::loss::{accuracy, cross_entropy};
use crate::optim::Sgd;
use fedclust_tensor::Tensor;

/// Offsets of one top-level layer's weights inside the flat parameter vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamBlock {
    /// Layer kind (`"dense"`, `"conv2d"`, `"residual"`, …).
    pub name: &'static str,
    /// Index of the layer in the model's top-level layer list.
    pub layer_index: usize,
    /// Offset of the block's first scalar in the parameter vector.
    pub offset: usize,
    /// Number of scalars in the block.
    pub len: usize,
}

/// A feed-forward model: an ordered stack of layers plus metadata.
pub struct Model {
    layers: Vec<Box<dyn Layer>>,
    num_classes: usize,
    architecture: String,
}

impl Clone for Model {
    fn clone(&self) -> Self {
        Model {
            layers: self.layers.clone(),
            num_classes: self.num_classes,
            architecture: self.architecture.clone(),
        }
    }
}

impl Model {
    /// Assemble a model from layers. `architecture` is a human-readable tag
    /// (e.g. `"lenet5"`).
    pub fn new(
        layers: Vec<Box<dyn Layer>>,
        num_classes: usize,
        architecture: impl Into<String>,
    ) -> Self {
        Model {
            layers,
            num_classes,
            architecture: architecture.into(),
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Architecture tag.
    pub fn architecture(&self) -> &str {
        &self.architecture
    }

    /// Forward pass over a batch.
    pub fn forward(&mut self, mut x: Tensor, train: bool) -> Tensor {
        for layer in &mut self.layers {
            x = layer.forward(x, train);
        }
        x
    }

    /// Backward pass; returns the gradient wrt the model input.
    pub fn backward(&mut self, mut grad: Tensor) -> Tensor {
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(grad);
        }
        grad
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Immutable parameter views in deterministic (layer, param) order.
    pub fn params(&self) -> Vec<&crate::param::Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable parameter views in deterministic (layer, param) order.
    pub fn params_mut(&mut self) -> Vec<&mut crate::param::Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// All trainable weights as one flat vector.
    pub fn param_vec(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for p in self.params() {
            out.extend_from_slice(p.value.data());
        }
        out
    }

    /// Overwrite all trainable weights from a flat vector.
    ///
    /// # Panics
    /// Panics if the length does not match [`Model::num_params`].
    pub fn set_param_vec(&mut self, vec: &[f32]) {
        assert_eq!(vec.len(), self.num_params(), "param vector length mismatch");
        let mut off = 0;
        for p in self.params_mut() {
            let n = p.value.numel();
            p.value.data_mut().copy_from_slice(&vec[off..off + n]);
            off += n;
        }
    }

    /// Clone the parameter tensors (used as FedProx proximal references).
    pub fn param_tensors(&self) -> Vec<Tensor> {
        self.params().iter().map(|p| p.value.clone()).collect()
    }

    /// Length of the non-trainable extra state (batch-norm running stats).
    pub fn extra_state_len(&self) -> usize {
        self.layers.iter().map(|l| l.extra_state_len()).sum()
    }

    /// Trainable weights plus non-trainable state, as one flat vector.
    /// This is the full payload clients and servers exchange.
    pub fn state_vec(&self) -> Vec<f32> {
        let mut out = self.param_vec();
        for layer in &self.layers {
            out.extend(layer.extra_state());
        }
        out
    }

    /// Total state length (params + extra state).
    pub fn state_len(&self) -> usize {
        self.num_params() + self.extra_state_len()
    }

    /// Overwrite all state from a flat vector produced by [`Model::state_vec`].
    pub fn set_state_vec(&mut self, vec: &[f32]) {
        assert_eq!(vec.len(), self.state_len(), "state vector length mismatch");
        let np = self.num_params();
        self.set_param_vec(&vec[..np]);
        let mut off = np;
        for layer in &mut self.layers {
            let n = layer.extra_state_len();
            if n > 0 {
                layer.set_extra_state(&vec[off..off + n]);
            }
            off += n;
        }
    }

    /// Per-top-level-layer parameter blocks, in parameter-vector order.
    /// Layers without parameters produce no block.
    pub fn param_blocks(&self) -> Vec<ParamBlock> {
        let mut blocks = Vec::new();
        let mut off = 0;
        for (i, layer) in self.layers.iter().enumerate() {
            let len = layer.param_count();
            if len > 0 {
                blocks.push(ParamBlock {
                    name: layer.name(),
                    layer_index: i,
                    offset: off,
                    len,
                });
            }
            off += len;
        }
        blocks
    }

    /// Weights of one parameter block as a flat vector.
    pub fn block_vec(&self, block: &ParamBlock) -> Vec<f32> {
        let pv = self.param_vec();
        pv[block.offset..block.offset + block.len].to_vec()
    }

    /// The final parameterised layer's weights + bias — the partial weights
    /// FedClust transmits for clustering (Eq. 3 of the paper).
    ///
    /// # Panics
    /// Panics if the model has no parameterised layer.
    pub fn final_layer_vec(&self) -> Vec<f32> {
        let blocks = self.param_blocks();
        // fedlint::allow(no-panic-paths): documented panic — the # Panics section requires at least one parameterised layer
        let last = blocks.last().expect("model has no parameterised layers");
        self.block_vec(last)
    }

    /// One SGD training step on a batch; returns the batch loss.
    pub fn train_step(&mut self, x: Tensor, targets: &[usize], opt: &mut Sgd) -> f32 {
        let logits = self.forward(x, true);
        let (loss, grad) = cross_entropy(&logits, targets);
        self.backward(grad);
        let mut params = self.params_mut();
        opt.step(&mut params);
        loss
    }

    /// Evaluate on a batch; returns `(loss, accuracy)`.
    pub fn evaluate(&mut self, x: Tensor, targets: &[usize]) -> (f32, f32) {
        let logits = self.forward(x, false);
        let (loss, _) = cross_entropy(&logits, targets);
        (loss, accuracy(&logits, targets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Model {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        Model::new(
            vec![
                Box::new(Dense::new(4, 8, &mut rng)),
                Box::new(Relu::default()),
                Box::new(Dense::new(8, 3, &mut rng)),
            ],
            3,
            "tiny",
        )
    }

    #[test]
    fn param_vec_round_trip() {
        let m = tiny_model(0);
        let v = m.param_vec();
        assert_eq!(v.len(), 4 * 8 + 8 + 8 * 3 + 3);
        let mut m2 = tiny_model(1);
        assert_ne!(m2.param_vec(), v);
        m2.set_param_vec(&v);
        assert_eq!(m2.param_vec(), v);
    }

    #[test]
    fn state_vec_equals_param_vec_without_batchnorm() {
        let m = tiny_model(0);
        assert_eq!(m.state_vec(), m.param_vec());
        assert_eq!(m.extra_state_len(), 0);
    }

    #[test]
    fn param_blocks_cover_vector_exactly() {
        let m = tiny_model(2);
        let blocks = m.param_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].offset, 0);
        assert_eq!(blocks[0].len, 4 * 8 + 8);
        assert_eq!(blocks[1].offset, 40);
        assert_eq!(blocks[1].len, 8 * 3 + 3);
        assert_eq!(blocks[0].len + blocks[1].len, m.num_params());
    }

    #[test]
    fn final_layer_vec_is_last_block() {
        let m = tiny_model(3);
        let f = m.final_layer_vec();
        assert_eq!(f.len(), 8 * 3 + 3);
        let pv = m.param_vec();
        assert_eq!(&pv[40..], &f[..]);
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut m = tiny_model(4);
        let mut opt = Sgd::new(crate::optim::SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        // Three trivially separable one-hot-ish inputs.
        let x = Tensor::from_vec(
            [3, 4],
            vec![
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0,
            ],
        );
        let y = [0usize, 1, 2];
        let first = m.train_step(x.clone(), &y, &mut opt);
        let mut last = first;
        for _ in 0..50 {
            last = m.train_step(x.clone(), &y, &mut opt);
        }
        assert!(last < first * 0.5, "loss {} -> {}", first, last);
        let (_, acc) = m.evaluate(x, &y);
        assert!(acc > 0.99);
    }

    #[test]
    fn clone_is_deep() {
        let m = tiny_model(5);
        let mut c = m.clone();
        let zeros = vec![0.0; c.num_params()];
        c.set_param_vec(&zeros);
        assert_ne!(m.param_vec(), c.param_vec());
    }
}
