//! Agglomerative hierarchical clustering (bottom-up), with the classic
//! linkage criteria implemented via Lance–Williams distance updates.
//!
//! This is the "HC(M, λ)" step of FedClust's Algorithm 1: start from
//! singleton clusters, repeatedly merge the closest pair, and stop when the
//! closest pair is farther apart than the threshold λ. The full merge
//! history (dendrogram) is recorded so a single clustering run supports
//! both threshold cuts (λ sweeps, Fig. 4) and k-cuts (fixed cluster counts
//! for baselines like IFCA comparisons).

use crate::proximity::ProximityMatrix;
use serde::{Deserialize, Serialize};

/// Linkage criterion: how the distance between merged clusters is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance (chains easily).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
    /// Size-weighted average pairwise distance (UPGMA) — FedClust's default.
    Average,
    /// Ward's minimum-variance criterion.
    Ward,
}

impl Linkage {
    /// All linkages, for ablation sweeps.
    pub const ALL: [Linkage; 4] = [
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
        Linkage::Ward,
    ];

    /// Short tag used in experiment output.
    pub fn tag(&self) -> &'static str {
        match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
            Linkage::Ward => "ward",
        }
    }

    /// Lance–Williams update: distance from cluster `k` to the merge of
    /// `i` and `j`, given current distances and cluster sizes.
    fn update(&self, d_ki: f32, d_kj: f32, d_ij: f32, n_i: f32, n_j: f32, n_k: f32) -> f32 {
        match self {
            Linkage::Single => d_ki.min(d_kj),
            Linkage::Complete => d_ki.max(d_kj),
            Linkage::Average => (n_i * d_ki + n_j * d_kj) / (n_i + n_j),
            Linkage::Ward => {
                let n = n_i + n_j + n_k;
                (((n_i + n_k) * d_ki * d_ki + (n_j + n_k) * d_kj * d_kj - n_k * d_ij * d_ij) / n)
                    .max(0.0)
                    .sqrt()
            }
        }
    }
}

/// One merge step: clusters `a` and `b` (scipy-style ids: leaves are
/// `0..n`, the i-th merge creates id `n+i`) joined at `distance`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f32,
    /// Size of the resulting cluster.
    pub size: usize,
}

/// The full merge history of a hierarchical clustering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves (items clustered).
    pub fn num_items(&self) -> usize {
        self.n
    }

    /// The merges, in non-decreasing distance order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cut the dendrogram at threshold `lambda`: apply every merge with
    /// `distance <= lambda`. Returns a cluster id (0-based, compacted) per
    /// item. Larger λ ⇒ fewer clusters.
    pub fn cut_at(&self, lambda: f32) -> Vec<usize> {
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.distance <= lambda)
            .count();
        self.assign_after(applied)
    }

    /// Cut to exactly `k` clusters (clamped to `[1, n]`).
    pub fn cut_k(&self, k: usize) -> Vec<usize> {
        let k = k.clamp(1, self.n.max(1));
        let applied = self.n.saturating_sub(k).min(self.merges.len());
        self.assign_after(applied)
    }

    /// Number of clusters a λ-cut would produce.
    pub fn num_clusters_at(&self, lambda: f32) -> usize {
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.distance <= lambda)
            .count();
        self.n - applied
    }

    /// Data-driven threshold choice: cut at the largest gap between
    /// consecutive merge distances. Returns `(labels, lambda)` where
    /// `lambda` is the midpoint of the widest gap. With no clear gap
    /// (all merge distances within 1e-6 of each other) everything is
    /// merged into a single cluster.
    pub fn largest_gap_cut(&self) -> (Vec<usize>, f32) {
        if self.merges.len() < 2 {
            let lambda = self
                .merges
                .last()
                .map(|m| m.distance + 1.0)
                .unwrap_or(f32::INFINITY);
            return (self.cut_at(lambda), lambda);
        }
        let mut best_gap = 0.0f32;
        let mut best_i = self.merges.len() - 1;
        for i in 0..self.merges.len() - 1 {
            let gap = self.merges[i + 1].distance - self.merges[i].distance;
            if gap > best_gap {
                best_gap = gap;
                best_i = i;
            }
        }
        if best_gap < 1e-6 {
            let lambda = self
                .merges
                .last()
                .map_or(f32::INFINITY, |m| m.distance + 1.0);
            return (self.cut_at(lambda), lambda);
        }
        let lambda = 0.5 * (self.merges[best_i].distance + self.merges[best_i + 1].distance);
        (self.cut_at(lambda), lambda)
    }

    /// Assignment after applying the first `applied` merges (union-find).
    fn assign_after(&self, applied: usize) -> Vec<usize> {
        let total = self.n + applied;
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, m) in self.merges.iter().take(applied).enumerate() {
            let new_id = self.n + i;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        // Compact root ids to 0-based cluster labels in first-seen order.
        // A BTreeMap (not HashMap) so the mapping — and with it every cluster
        // label that reaches aggregation and telemetry — is a pure function
        // of the merge structure, never of hasher state.
        let mut label_of_root: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        let mut out = Vec::with_capacity(self.n);
        for item in 0..self.n {
            let root = find(&mut parent, item);
            let next = label_of_root.len();
            let label = *label_of_root.entry(root).or_insert(next);
            out.push(label);
        }
        out
    }
}

/// Run agglomerative clustering over a proximity matrix and return the full
/// dendrogram. `O(n³)` naive implementation — n is the client count
/// (≤ a few hundred), so this completes in microseconds-to-milliseconds.
pub fn agglomerative(matrix: &ProximityMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    if n == 0 {
        return Dendrogram {
            n,
            merges: Vec::new(),
        };
    }
    // Working distance matrix indexed by *slot*; each slot holds an active
    // cluster (or is dead after being merged away).
    let mut dist: Vec<f32> = matrix.as_slice().to_vec();
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<f32> = vec![1.0; n];
    // scipy-style id currently living in each slot.
    let mut id: Vec<usize> = (0..n).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    for step in 0..n.saturating_sub(1) {
        // Find the closest active pair.
        let mut best = f32::INFINITY;
        let mut pair = (0usize, 0usize);
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i * n + j];
                if d < best {
                    best = d;
                    pair = (i, j);
                }
            }
        }
        let (i, j) = pair;
        let d_ij = best;
        merges.push(Merge {
            a: id[i].min(id[j]),
            b: id[i].max(id[j]),
            distance: d_ij,
            size: (size[i] + size[j]) as usize,
        });
        // Merge j into i's slot; update distances via Lance–Williams.
        for k in 0..n {
            if !active[k] || k == i || k == j {
                continue;
            }
            let d_ki = dist[k * n + i];
            let d_kj = dist[k * n + j];
            let nd = linkage.update(d_ki, d_kj, d_ij, size[i], size[j], size[k]);
            dist[k * n + i] = nd;
            dist[i * n + k] = nd;
        }
        size[i] += size[j];
        active[j] = false;
        id[i] = n + step;
    }
    Dendrogram { n, merges }
}

/// Convenience: cluster and cut at λ in one call (the paper's `HC(M, λ)`).
pub fn cluster_threshold(matrix: &ProximityMatrix, linkage: Linkage, lambda: f32) -> Vec<usize> {
    agglomerative(matrix, linkage).cut_at(lambda)
}

/// Convenience: cluster and cut to `k` clusters.
pub fn cluster_k(matrix: &ProximityMatrix, linkage: Linkage, k: usize) -> Vec<usize> {
    agglomerative(matrix, linkage).cut_k(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups far apart on a line: {0,1,2} near 0, {3,4,5} near 100.
    fn two_groups() -> ProximityMatrix {
        let pos = [0.0f32, 1.0, 2.0, 100.0, 101.0, 102.0];
        ProximityMatrix::from_fn(6, |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn recovers_two_groups_for_all_linkages() {
        let m = two_groups();
        for linkage in Linkage::ALL {
            let labels = cluster_k(&m, linkage, 2);
            assert_eq!(labels[0], labels[1], "{:?}", linkage);
            assert_eq!(labels[1], labels[2], "{:?}", linkage);
            assert_eq!(labels[3], labels[4], "{:?}", linkage);
            assert_eq!(labels[4], labels[5], "{:?}", linkage);
            assert_ne!(labels[0], labels[3], "{:?}", linkage);
        }
    }

    #[test]
    fn threshold_cut_matches_structure() {
        let m = two_groups();
        let dendro = agglomerative(&m, Linkage::Average);
        // λ below inter-group gap, above intra spacing.
        let labels = dendro.cut_at(10.0);
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(dendro.num_clusters_at(10.0), 2);
        // λ below everything: all singletons.
        let labels = dendro.cut_at(0.5);
        assert_eq!(labels, vec![0, 1, 2, 3, 4, 5]);
        // λ above everything: one cluster.
        let labels = dendro.cut_at(1e6);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn merge_distances_are_monotone_for_average_and_complete() {
        // (Single linkage is also monotone; Ward via L-W too. Check all.)
        let m = two_groups();
        for linkage in Linkage::ALL {
            let d = agglomerative(&m, linkage);
            for w in d.merges().windows(2) {
                assert!(
                    w[0].distance <= w[1].distance + 1e-5,
                    "{:?}: {} then {}",
                    linkage,
                    w[0].distance,
                    w[1].distance
                );
            }
        }
    }

    #[test]
    fn cut_k_extremes() {
        let m = two_groups();
        let d = agglomerative(&m, Linkage::Complete);
        assert!(d.cut_k(1).iter().all(|&l| l == 0));
        assert_eq!(d.cut_k(6), vec![0, 1, 2, 3, 4, 5]);
        // Out-of-range k clamps.
        assert_eq!(d.cut_k(100), vec![0, 1, 2, 3, 4, 5]);
        assert!(d.cut_k(0).iter().all(|&l| l == 0));
    }

    #[test]
    fn single_linkage_chains_complete_does_not() {
        // A chain of equidistant points: 0-1-2-3 spaced 1 apart.
        let pos = [0.0f32, 1.0, 2.0, 3.0];
        let m = ProximityMatrix::from_fn(4, |i, j| (pos[i] - pos[j]).abs());
        // With λ=1, single linkage chains everything into one cluster.
        let single = cluster_threshold(&m, Linkage::Single, 1.0);
        assert!(single.iter().all(|&l| l == single[0]));
        // Complete linkage keeps at least two clusters at the same λ.
        let complete = cluster_threshold(&m, Linkage::Complete, 1.0);
        let k = complete.iter().copied().max().unwrap() + 1;
        assert!(k >= 2, "complete produced {} clusters", k);
    }

    #[test]
    fn singleton_and_empty_inputs() {
        let m1 = ProximityMatrix::from_fn(1, |_, _| 0.0);
        let d = agglomerative(&m1, Linkage::Average);
        assert_eq!(d.cut_at(1.0), vec![0]);
        let m0 = ProximityMatrix::from_fn(0, |_, _| 0.0);
        let d = agglomerative(&m0, Linkage::Average);
        assert!(d.cut_at(1.0).is_empty());
    }

    #[test]
    fn ward_prefers_balanced_merges() {
        // Three points: two close, one mid-distance; Ward should still
        // merge the closest pair first.
        let pos = [0.0f32, 1.0, 5.0];
        let m = ProximityMatrix::from_fn(3, |i, j| (pos[i] - pos[j]).abs());
        let d = agglomerative(&m, Linkage::Ward);
        assert_eq!((d.merges()[0].a, d.merges()[0].b), (0, 1));
    }

    #[test]
    fn largest_gap_cut_finds_two_groups() {
        let m = two_groups();
        let d = agglomerative(&m, Linkage::Average);
        let (labels, lambda) = d.largest_gap_cut();
        let k = labels.iter().copied().max().unwrap() + 1;
        assert_eq!(k, 2, "labels {:?} lambda {}", labels, lambda);
        assert!(lambda > 2.0 && lambda < 100.0);
    }

    #[test]
    fn largest_gap_cut_degenerate_inputs() {
        // Single item: one cluster.
        let m1 = ProximityMatrix::from_fn(1, |_, _| 0.0);
        let (labels, _) = agglomerative(&m1, Linkage::Average).largest_gap_cut();
        assert_eq!(labels, vec![0]);
        // Equidistant points: no gap, merge everything.
        let m = ProximityMatrix::from_fn(3, |_, _| 1.0);
        let (labels, _) = agglomerative(&m, Linkage::Single).largest_gap_cut();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn labels_are_canonical_and_permutation_consistent() {
        // Regression: cluster labeling must be a pure function of the merge
        // structure — first-seen compaction over a BTreeMap, never hasher
        // order. Two runs over a shuffled proximity matrix must agree.
        let pos = [0.0f32, 1.0, 2.0, 100.0, 101.0, 102.0, 50.0, 51.0];
        let perm = [6usize, 3, 0, 7, 1, 4, 2, 5]; // shuffled client order
        let shuffled = ProximityMatrix::from_fn(8, |i, j| (pos[perm[i]] - pos[perm[j]]).abs());
        let a = cluster_k(&shuffled, Linkage::Average, 3);
        let b = cluster_k(&shuffled, Linkage::Average, 3);
        assert_eq!(a, b, "two runs over the same shuffled matrix must agree");
        // Labels are canonical: first-seen order, so label 0 appears first
        // and each new label is exactly one more than the current max.
        let mut next = 0usize;
        for &l in &a {
            assert!(l <= next, "labels {:?} not first-seen compacted", a);
            next = next.max(l + 1);
        }
        // Partition equivalence with the unshuffled run: co-membership of
        // any client pair is invariant under the input permutation.
        let base = cluster_k(
            &ProximityMatrix::from_fn(8, |i, j| (pos[i] - pos[j]).abs()),
            Linkage::Average,
            3,
        );
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(
                    base[perm[i]] == base[perm[j]],
                    a[i] == a[j],
                    "pair ({i},{j}) co-membership changed under permutation"
                );
            }
        }
    }

    #[test]
    fn average_linkage_exact_distance() {
        // Groups {0,1} and {2}: average distance = mean(d02, d12).
        let pos = [0.0f32, 2.0, 10.0];
        let m = ProximityMatrix::from_fn(3, |i, j| (pos[i] - pos[j]).abs());
        let d = agglomerative(&m, Linkage::Average);
        assert_eq!(d.merges()[0].distance, 2.0);
        assert!((d.merges()[1].distance - 9.0).abs() < 1e-5); // (10 + 8)/2
    }
}
