//! Cluster-quality metrics: ARI, NMI, purity (against ground truth) and
//! the silhouette coefficient (internal, no ground truth needed).

use crate::proximity::ProximityMatrix;

/// Mean silhouette coefficient of a labeling over a distance matrix, in
/// `[-1, 1]`. Singleton clusters contribute 0 (the standard convention).
/// Returns 0 for trivial partitions (a single cluster or an empty input).
pub fn mean_silhouette(matrix: &ProximityMatrix, labels: &[usize]) -> f64 {
    let (sum, _, n) = silhouette_sums(matrix, labels);
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Silhouette statistics split by singleton membership: returns
/// `(mean silhouette over non-singleton points, fraction of points in
/// non-singleton clusters)`. Both are 0 when no point shares a cluster.
///
/// Selection heuristics use this to avoid the classic dilution problem:
/// with many small true groups plus a few genuinely unique items, the
/// standard mean (singletons = 0) can prefer a coarse, wrong cut.
pub fn silhouette_nonsingleton(matrix: &ProximityMatrix, labels: &[usize]) -> (f64, f64) {
    let (sum, covered, n) = silhouette_sums(matrix, labels);
    if n == 0 || covered == 0 {
        (0.0, 0.0)
    } else {
        (sum / covered as f64, covered as f64 / n as f64)
    }
}

/// Shared silhouette computation: `(sum of s(i) over non-singleton points,
/// number of non-singleton points, total points)`.
fn silhouette_sums(matrix: &ProximityMatrix, labels: &[usize]) -> (f64, usize, usize) {
    let n = matrix.len();
    assert_eq!(labels.len(), n, "labels must match matrix size");
    if n == 0 {
        return (0.0, 0, 0);
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return (0.0, 0, n);
    }
    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l] += 1;
    }
    let mut total = 0.0f64;
    let mut covered = 0usize;
    let mut sums = vec![0.0f64; k];
    for i in 0..n {
        let li = labels[i];
        if sizes[li] == 1 {
            continue; // silhouette of a singleton is 0
        }
        covered += 1;
        sums.iter_mut().for_each(|s| *s = 0.0);
        for j in 0..n {
            if j != i {
                sums[labels[j]] += matrix.get(i, j) as f64;
            }
        }
        let a = sums[li] / (sizes[li] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != li && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    (total, covered, n)
}

/// Contingency table between two labelings.
fn contingency(a: &[usize], b: &[usize]) -> (Vec<Vec<u64>>, Vec<u64>, Vec<u64>) {
    assert_eq!(a.len(), b.len(), "labelings must have equal length");
    let ka = a.iter().copied().max().map_or(0, |m| m + 1);
    let kb = b.iter().copied().max().map_or(0, |m| m + 1);
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let row: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
    let col: Vec<u64> = (0..kb).map(|j| table.iter().map(|r| r[j]).sum()).collect();
    (table, row, col)
}

fn choose2(n: u64) -> f64 {
    (n as f64) * (n.saturating_sub(1) as f64) / 2.0
}

/// Adjusted Rand index in `[-1, 1]`; 1 = identical partitions, ~0 = random.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let (table, row, col) = contingency(a, b);
    let sum_comb: f64 = table.iter().flatten().map(|&n| choose2(n)).sum();
    let sum_row: f64 = row.iter().map(|&n| choose2(n)).sum();
    let sum_col: f64 = col.iter().map(|&n| choose2(n)).sum();
    let total = choose2(a.len() as u64);
    // fedlint::allow(float-eq): exact-zero sentinel — choose2 of small integers is exact in f64; zero means n < 2, not a rounding artifact
    if total == 0.0 {
        return 1.0;
    }
    let expected = sum_row * sum_col / total;
    let max = 0.5 * (sum_row + sum_col);
    if (max - expected).abs() < 1e-12 {
        return 1.0; // both partitions trivial (all-singletons or all-one)
    }
    (sum_comb - expected) / (max - expected)
}

/// Normalised mutual information in `[0, 1]` (sqrt normalisation).
pub fn normalized_mutual_info(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let (table, row, col) = contingency(a, b);
    let n = a.len() as f64;
    let mut mi = 0.0f64;
    for (i, r) in table.iter().enumerate() {
        for (j, &nij) in r.iter().enumerate() {
            if nij == 0 {
                continue;
            }
            let pij = nij as f64 / n;
            let pi = row[i] as f64 / n;
            let pj = col[j] as f64 / n;
            mi += pij * (pij / (pi * pj)).ln();
        }
    }
    let h = |marginal: &[u64]| -> f64 {
        marginal
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (h(&row), h(&col));
    // fedlint::allow(float-eq): exact-zero sentinel — entropy is exactly 0.0 only for the single-cluster partition (the sum is empty or -1·ln(1))
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both trivial single-cluster partitions
    }
    let denom = (ha * hb).sqrt();
    // fedlint::allow(float-eq): exact-zero sentinel — denom is 0.0 only when one entropy above was exactly zero
    if denom == 0.0 {
        return 0.0;
    }
    (mi / denom).clamp(0.0, 1.0)
}

/// Purity in `(0, 1]`: fraction of items in the majority ground-truth class
/// of their predicted cluster.
pub fn purity(predicted: &[usize], truth: &[usize]) -> f64 {
    if predicted.is_empty() {
        return 1.0;
    }
    let (table, _, _) = contingency(predicted, truth);
    let correct: u64 = table
        .iter()
        .map(|r| r.iter().copied().max().unwrap_or(0))
        .sum();
    correct as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_info(&a, &a) - 1.0).abs() < 1e-9);
        assert!((purity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeled_partition_scores_one() {
        let a = vec![0, 0, 1, 1];
        let b = vec![1, 1, 0, 0];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_info(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_partition_scores_near_zero_ari() {
        // Crossing partition: every predicted cluster is half/half.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.5, "ari {}", ari);
    }

    #[test]
    fn all_in_one_vs_split() {
        let one = vec![0, 0, 0, 0];
        let split = vec![0, 0, 1, 1];
        let nmi = normalized_mutual_info(&one, &split);
        assert!(nmi < 1e-9, "nmi {}", nmi);
        // Purity of a single predicted cluster = max class fraction.
        assert!((purity(&one, &split) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn purity_of_all_singletons_is_one() {
        let singles = vec![0, 1, 2, 3];
        let truth = vec![0, 0, 1, 1];
        assert!((purity(&singles, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_between_zero_and_one() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.0 && ari < 1.0, "ari {}", ari);
        let nmi = normalized_mutual_info(&a, &b);
        assert!(nmi > 0.0 && nmi < 1.0, "nmi {}", nmi);
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<usize> = vec![];
        assert_eq!(adjusted_rand_index(&e, &e), 1.0);
        assert_eq!(normalized_mutual_info(&e, &e), 1.0);
        assert_eq!(purity(&e, &e), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = adjusted_rand_index(&[0, 1], &[0]);
    }

    #[test]
    fn silhouette_high_for_tight_groups() {
        let pos = [0.0f32, 0.1, 0.2, 10.0, 10.1, 10.2];
        let m = ProximityMatrix::from_fn(6, |i, j| (pos[i] - pos[j]).abs());
        let good = mean_silhouette(&m, &[0, 0, 0, 1, 1, 1]);
        assert!(good > 0.9, "good {}", good);
        let bad = mean_silhouette(&m, &[0, 1, 0, 1, 0, 1]);
        assert!(bad < 0.0, "bad {}", bad);
        assert!(good > bad);
    }

    #[test]
    fn silhouette_trivial_partitions_are_zero() {
        let m = ProximityMatrix::from_fn(3, |_, _| 1.0);
        assert_eq!(mean_silhouette(&m, &[0, 0, 0]), 0.0);
        // All singletons: every point contributes 0.
        assert_eq!(mean_silhouette(&m, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn silhouette_mixed_singletons_counted_as_zero() {
        let pos = [0.0f32, 0.1, 5.0];
        let m = ProximityMatrix::from_fn(3, |i, j| (pos[i] - pos[j]).abs());
        // {0,1} tight pair + singleton {2}: pair scores ≈1, singleton 0.
        let s = mean_silhouette(&m, &[0, 0, 1]);
        assert!(s > 0.6 && s < 0.67, "s {}", s);
    }
}
