//! # fedclust-cluster
//!
//! Agglomerative hierarchical clustering and cluster-quality metrics — the
//! server-side machinery of FedClust's one-shot clustering step
//! (Algorithm 1 of the paper) and of the PACFL baseline.
//!
//! * [`proximity::ProximityMatrix`] — a symmetric pairwise-distance matrix,
//! * [`hac`] — bottom-up agglomerative clustering with single / complete /
//!   average / Ward linkage (Lance–Williams updates), threshold (λ) and
//!   k-cluster cuts, and dendrogram export,
//! * [`metrics`] — adjusted Rand index, normalised mutual information and
//!   purity, used to validate recovered clusters against ground truth.

pub mod hac;
pub mod metrics;
pub mod proximity;

pub use hac::{Dendrogram, Linkage};
pub use proximity::ProximityMatrix;
