//! Symmetric pairwise-distance (proximity) matrices.

use serde::{Deserialize, Serialize};

/// A symmetric `n×n` distance matrix with zero diagonal — the matrix `M`
/// the FedClust server builds from clients' partial weights (Eq. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProximityMatrix {
    n: usize,
    /// Row-major full storage (kept simple; n is the client count, ≤ a few
    /// hundred in every experiment).
    data: Vec<f32>,
}

impl ProximityMatrix {
    /// Build from a row-major full matrix.
    ///
    /// # Panics
    /// Panics if the data is not `n²` long, not symmetric (tolerance 1e-4),
    /// or has a nonzero diagonal.
    pub fn from_full(n: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * n, "expected n² entries");
        for i in 0..n {
            assert!(
                data[i * n + i].abs() < 1e-6,
                "diagonal must be zero at {}",
                i
            );
            for j in 0..i {
                assert!(
                    (data[i * n + j] - data[j * n + i]).abs() < 1e-4,
                    "matrix not symmetric at ({}, {})",
                    i,
                    j
                );
            }
        }
        ProximityMatrix { n, data }
    }

    /// Build by evaluating a distance function on all pairs.
    pub fn from_fn(n: usize, mut dist: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(i, j);
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        ProximityMatrix { n, data }
    }

    /// Matrix side length (number of items).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty (0×0) matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n + j]
    }

    /// The raw row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mean off-diagonal distance (a useful λ calibration reference).
    pub fn mean_distance(&self) -> f32 {
        if self.n < 2 {
            return 0.0;
        }
        let mut sum = 0.0f64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                sum += self.get(i, j) as f64;
            }
        }
        (sum / ((self.n * (self.n - 1) / 2) as f64)) as f32
    }

    /// Smallest off-diagonal distance.
    pub fn min_distance(&self) -> f32 {
        let mut min = f32::INFINITY;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                min = min.min(self.get(i, j));
            }
        }
        min
    }

    /// Largest off-diagonal distance.
    pub fn max_distance(&self) -> f32 {
        let mut max = 0.0f32;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                max = max.max(self.get(i, j));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ProximityMatrix {
        // Items at 0, 3, 4 on a line.
        ProximityMatrix::from_fn(3, |i, j| {
            let pos = [0.0f32, 3.0, 4.0];
            (pos[i] - pos[j]).abs()
        })
    }

    #[test]
    fn from_fn_is_symmetric() {
        let m = triangle();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 2), 1.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn stats() {
        let m = triangle();
        assert_eq!(m.min_distance(), 1.0);
        assert_eq!(m.max_distance(), 4.0);
        assert!((m.mean_distance() - (3.0 + 4.0 + 1.0) / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_rejected() {
        let _ = ProximityMatrix::from_full(2, vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "diagonal must be zero")]
    fn nonzero_diagonal_rejected() {
        let _ = ProximityMatrix::from_full(2, vec![1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn empty_matrix() {
        let m = ProximityMatrix::from_fn(0, |_, _| 0.0);
        assert!(m.is_empty());
        assert_eq!(m.mean_distance(), 0.0);
    }
}
