//! Property-based tests of the hierarchical clustering machinery.

use fedclust_cluster::hac::{agglomerative, Linkage};
use fedclust_cluster::metrics::mean_silhouette;
use fedclust_cluster::ProximityMatrix;
use proptest::prelude::*;

fn point_matrix(points: &[f32]) -> ProximityMatrix {
    ProximityMatrix::from_fn(points.len(), |i, j| (points[i] - points[j]).abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every cut of a dendrogram is a valid partition: labels are compact
    /// 0-based ids and k-cuts produce exactly k clusters.
    #[test]
    fn cuts_are_valid_partitions(
        points in proptest::collection::vec(-100.0f32..100.0, 2..12),
        linkage_idx in 0usize..4,
    ) {
        let linkage = Linkage::ALL[linkage_idx];
        let m = point_matrix(&points);
        let d = agglomerative(&m, linkage);
        for k in 1..=points.len() {
            let labels = d.cut_k(k);
            prop_assert_eq!(labels.len(), points.len());
            let max = labels.iter().copied().max().unwrap();
            prop_assert_eq!(max + 1, k, "cut_k({}) produced {} clusters", k, max + 1);
            // Compactness: every id below max appears.
            for id in 0..=max {
                prop_assert!(labels.contains(&id));
            }
        }
    }

    /// Merge distances are non-decreasing for all Lance–Williams linkages
    /// on metric (1-d) data.
    #[test]
    fn merges_are_monotone(
        points in proptest::collection::vec(-100.0f32..100.0, 2..14),
        linkage_idx in 0usize..4,
    ) {
        let linkage = Linkage::ALL[linkage_idx];
        let d = agglomerative(&point_matrix(&points), linkage);
        for w in d.merges().windows(2) {
            prop_assert!(
                w[0].distance <= w[1].distance + 1e-4,
                "{:?}: {} then {}", linkage, w[0].distance, w[1].distance
            );
        }
    }

    /// The number of clusters at λ equals n − (#merges with distance ≤ λ).
    #[test]
    fn cluster_count_matches_merge_count(
        points in proptest::collection::vec(-100.0f32..100.0, 2..12),
        lambda in 0.0f32..250.0,
    ) {
        let d = agglomerative(&point_matrix(&points), Linkage::Average);
        let applied = d.merges().iter().filter(|m| m.distance <= lambda).count();
        prop_assert_eq!(d.num_clusters_at(lambda), points.len() - applied);
        let labels = d.cut_at(lambda);
        let k = labels.iter().copied().max().unwrap_or(0) + 1;
        prop_assert_eq!(k, points.len() - applied);
    }

    /// Silhouette is bounded in [-1, 1] for any labeling.
    #[test]
    fn silhouette_is_bounded(
        points in proptest::collection::vec(-100.0f32..100.0, 3..10),
        labels_seed in proptest::collection::vec(0usize..3, 10),
    ) {
        let n = points.len();
        let labels: Vec<usize> = {
            // Compact the raw labels so ids are 0-based dense.
            let raw = &labels_seed[..n];
            let mut seen: Vec<usize> = Vec::new();
            raw.iter().map(|&l| {
                if let Some(p) = seen.iter().position(|&s| s == l) { p } else { seen.push(l); seen.len() - 1 }
            }).collect()
        };
        let m = point_matrix(&points);
        let s = mean_silhouette(&m, &labels);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "s = {}", s);
    }

    /// Two well-separated 1-d blobs are always recovered by a 2-cut,
    /// whatever the linkage.
    #[test]
    fn separated_blobs_are_recovered(
        mut left in proptest::collection::vec(0.0f32..1.0, 2..5),
        right in proptest::collection::vec(100.0f32..101.0, 2..5),
        linkage_idx in 0usize..4,
    ) {
        let n_left = left.len();
        left.extend(right.iter().copied());
        let d = agglomerative(&point_matrix(&left), Linkage::ALL[linkage_idx]);
        let labels = d.cut_k(2);
        for i in 1..n_left {
            prop_assert_eq!(labels[i], labels[0]);
        }
        for i in n_left..left.len() {
            prop_assert_eq!(labels[i], labels[n_left]);
        }
        prop_assert_ne!(labels[0], labels[n_left]);
    }
}
