//! Algorithm 2: incorporating newcomer clients after federation.
//!
//! A newcomer trains the *initial* server model θ⁰ briefly on its own data,
//! uploads the selected partial weights, and the server assigns it to the
//! cluster whose representative partial weights are closest (Eq. 4). The
//! newcomer then receives that cluster's trained model and personalizes it
//! for a few epochs.

use crate::algorithm::TrainedFederation;
use crate::proximity::WeightSelection;
use fedclust_data::ClientData;
use fedclust_fl::engine::local_train;
use fedclust_fl::FlConfig;
use fedclust_nn::optim::Sgd;
use fedclust_tensor::distance::Metric;
use rayon::prelude::*;

/// Result of incorporating one newcomer.
#[derive(Debug, Clone, PartialEq)]
pub struct NewcomerOutcome {
    /// The cluster the newcomer was assigned to (Eq. 4's argmin).
    pub cluster: usize,
    /// Local test accuracy after receiving and personalizing the cluster
    /// model.
    pub accuracy: f32,
}

/// Assign a newcomer to the closest cluster by partial-weight distance.
/// Returns the chosen cluster id. This is Eq. 4; it requires only the
/// stored per-cluster representatives, no re-clustering.
pub fn assign_cluster(
    federation: &TrainedFederation,
    newcomer_partial: &[f32],
    metric: Metric,
) -> usize {
    assert!(
        !federation.representatives.is_empty(),
        "federation has no clusters"
    );
    federation
        .representatives
        .iter()
        .enumerate()
        .map(|(ci, rep)| (ci, metric.eval(newcomer_partial, rep)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map_or(0, |(ci, _)| ci)
}

/// Run Algorithm 2 end-to-end for one newcomer: warm-up from θ⁰, upload
/// partial weights, receive the argmin cluster's model, personalize for
/// `personalize_epochs`, and evaluate on the newcomer's local test set.
#[allow(clippy::too_many_arguments)]
pub fn incorporate(
    federation: &TrainedFederation,
    newcomer: &ClientData,
    cfg: &FlConfig,
    selection: WeightSelection,
    metric: Metric,
    warmup_epochs: usize,
    personalize_epochs: usize,
    newcomer_id: usize,
) -> NewcomerOutcome {
    // Line 1–3: train θ⁰ locally, extract partial weights.
    let mut probe = federation.template.clone();
    probe.set_state_vec(&federation.init_state);
    let mut opt = Sgd::new(cfg.sgd());
    local_train(
        &mut probe,
        newcomer,
        &mut opt,
        warmup_epochs,
        cfg.batch_size,
        cfg.seed,
        1_000_000 + newcomer_id, // distinct rng stream from federation clients
        0,
    );
    let partial = selection.extract(&probe);

    // Lines 4–5: Eq. 4 assignment.
    let cluster = assign_cluster(federation, &partial, metric);

    // Receive the cluster model and personalize briefly.
    let mut model = federation.template.clone();
    model.set_state_vec(&federation.cluster_states[cluster]);
    let mut opt = Sgd::new(cfg.sgd());
    local_train(
        &mut model,
        newcomer,
        &mut opt,
        personalize_epochs,
        cfg.batch_size,
        cfg.seed,
        2_000_000 + newcomer_id,
        0,
    );

    let idx: Vec<usize> = (0..newcomer.test.len()).collect();
    let accuracy = if idx.is_empty() {
        0.0
    } else {
        let (x, y) = newcomer.test.batch(&idx);
        model.evaluate(x, &y).1
    };
    NewcomerOutcome { cluster, accuracy }
}

/// Incorporate a batch of newcomers in parallel and return their outcomes.
pub fn incorporate_all(
    federation: &TrainedFederation,
    newcomers: &[ClientData],
    cfg: &FlConfig,
    selection: WeightSelection,
    metric: Metric,
    warmup_epochs: usize,
    personalize_epochs: usize,
) -> Vec<NewcomerOutcome> {
    newcomers
        .par_iter()
        .enumerate()
        .map(|(i, nc)| {
            incorporate(
                federation,
                nc,
                cfg,
                selection,
                metric,
                warmup_epochs,
                personalize_epochs,
                i,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FedClust;
    use fedclust_data::{DatasetProfile, FederatedDataset};

    /// 10 clients in two groups; the last 2 (one per group) join late.
    fn setup() -> (TrainedFederation, Vec<ClientData>, Vec<usize>, FlConfig) {
        let groups: Vec<Vec<usize>> = (0..10)
            .map(|c| {
                if c % 2 == 0 {
                    (0..5).collect()
                } else {
                    (5..10).collect()
                }
            })
            .collect();
        let fd = FederatedDataset::build_grouped(
            DatasetProfile::FmnistLike,
            &groups,
            &fedclust_data::federated::FederatedConfig {
                num_clients: 10,
                samples_per_class: 40,
                train_fraction: 0.8,
                seed: 11,
            },
        );
        let truth = fd.ground_truth_groups();
        let newcomer_truth = truth[8..].to_vec();
        let (fd, newcomers) = fd.split_newcomers(2);
        let mut cfg = FlConfig::tiny(11);
        cfg.rounds = 4;
        cfg.local_epochs = 2;
        let (_, federation) = FedClust::default().run_detailed(&fd, &cfg);
        (federation, newcomers, newcomer_truth, cfg)
    }

    #[test]
    fn newcomers_land_in_matching_clusters() {
        let (federation, newcomers, newcomer_truth, cfg) = setup();
        if federation.outcome.num_clusters != 2 {
            // Clustering of the 8 remaining clients must find the 2 groups
            // for this test to be meaningful.
            panic!(
                "expected 2 clusters, got {}",
                federation.outcome.num_clusters
            );
        }
        let outcomes = incorporate_all(
            &federation,
            &newcomers,
            &cfg,
            WeightSelection::FinalLayer,
            Metric::L2,
            2,
            2,
        );
        // The two newcomers come from different ground-truth groups, so
        // they must land in different clusters.
        assert_ne!(outcomes[0].cluster, outcomes[1].cluster);
        // And each must land in the cluster holding its own group: check
        // via the federation's label of a same-group original client.
        // Original clients alternate groups (even=group0, odd=group1);
        // after split_newcomers the remaining are clients 0..8.
        let cluster_of_group: Vec<usize> = vec![federation.labels[0], federation.labels[1]];
        for (o, &g) in outcomes.iter().zip(&newcomer_truth) {
            assert_eq!(o.cluster, cluster_of_group[g], "newcomer in wrong cluster");
        }
    }

    #[test]
    fn personalized_newcomer_accuracy_is_reasonable() {
        let (federation, newcomers, _, cfg) = setup();
        let outcomes = incorporate_all(
            &federation,
            &newcomers,
            &cfg,
            WeightSelection::FinalLayer,
            Metric::L2,
            2,
            3,
        );
        for o in &outcomes {
            // Two-group FMNIST-like with 5 classes per client: even a few
            // rounds of cluster training + personalization beats chance (10%).
            assert!(o.accuracy > 0.2, "newcomer accuracy {}", o.accuracy);
        }
    }

    #[test]
    fn assign_cluster_picks_nearest_representative() {
        let (mut federation, _, _, _) = setup();
        federation.representatives = vec![vec![0.0; 4], vec![10.0; 4]];
        assert_eq!(assign_cluster(&federation, &[0.1; 4], Metric::L2), 0);
        assert_eq!(assign_cluster(&federation, &[9.0; 4], Metric::L2), 1);
    }
}
