//! Warm-up training, partial-weight collection, and the Eq. 3 proximity
//! matrix.
//!
//! The key design choice of FedClust (paper §4.1): clients upload only the
//! final layer's weights + bias, which are (a) tiny compared to the full
//! model and (b) the weights most strongly tied to the local label
//! distribution (the paper's Fig. 1 observation, reproduced by this
//! crate's `fig1` bench harness).

use fedclust_cluster::ProximityMatrix;
use fedclust_data::FederatedDataset;
use fedclust_fl::engine::{local_train, remote_trainer, RemoteRound};
use fedclust_fl::FlConfig;
use fedclust_nn::optim::Sgd;
use fedclust_nn::Model;
use fedclust_tensor::distance::Metric;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Which slice of the locally trained weights clients upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightSelection {
    /// The final parameterised layer's weights + bias — FedClust's choice.
    FinalLayer,
    /// The full parameter vector — the ablation the paper argues against
    /// (larger uploads, *worse* similarity signal).
    FullModel,
    /// One specific parameter block (by index) — used by the Fig. 1
    /// layer-wise study.
    Block(usize),
}

impl WeightSelection {
    /// Extract the selected weights from a trained model.
    pub fn extract(&self, model: &Model) -> Vec<f32> {
        match self {
            WeightSelection::FinalLayer => model.final_layer_vec(),
            WeightSelection::FullModel => model.param_vec(),
            WeightSelection::Block(i) => {
                let blocks = model.param_blocks();
                model.block_vec(&blocks[*i])
            }
        }
    }

    /// Number of scalars this selection uploads, for a given model.
    pub fn upload_len(&self, model: &Model) -> usize {
        match self {
            WeightSelection::FinalLayer => model.final_layer_vec().len(),
            WeightSelection::FullModel => model.num_params(),
            WeightSelection::Block(i) => model.param_blocks()[*i].len,
        }
    }
}

/// Round-0 warm-up: every client trains the broadcast model θ⁰ for
/// `warmup_epochs` local epochs and returns the selected partial weights.
/// Runs clients in parallel; deterministic per `(cfg.seed, client)`.
pub fn collect_partial_weights(
    fd: &FederatedDataset,
    cfg: &FlConfig,
    template: &Model,
    init_state: &[f32],
    warmup_epochs: usize,
    selection: WeightSelection,
) -> Vec<Vec<f32>> {
    let clients: Vec<usize> = (0..fd.num_clients()).collect();
    collect_partial_weights_for(
        fd,
        cfg,
        template,
        init_state,
        warmup_epochs,
        selection,
        &clients,
    )
    .into_iter()
    .map(|(_, partial)| partial)
    .collect()
}

/// [`collect_partial_weights`] restricted to an explicit client list — the
/// fault-tolerant round 0 collects only from the clients the broadcast
/// actually reached. Results are `(client, partial)` pairs in `clients`
/// order; when a remote trainer is installed the warmup is delegated to
/// the worker fleet, and clients the network wrote off are *omitted*
/// (the local path always returns every requested client).
#[allow(clippy::too_many_arguments)]
pub fn collect_partial_weights_for(
    fd: &FederatedDataset,
    cfg: &FlConfig,
    template: &Model,
    init_state: &[f32],
    warmup_epochs: usize,
    selection: WeightSelection,
    clients: &[usize],
) -> Vec<(usize, Vec<f32>)> {
    if let Some(remote) = remote_trainer() {
        // Workers return raw full states; the partial-weight extraction
        // stays server-side so the uplink path (codec, faults, screen)
        // sees exactly what the in-process simulation would have built.
        let states = remote.warmup_remote(RemoteRound {
            round: 0,
            clients,
            start_state: init_state,
            prox_mu: None,
            epochs: warmup_epochs,
            residuals: Vec::new(),
        });
        return states
            .into_iter()
            .map(|(client, state)| {
                let mut model = template.clone();
                model.set_state_vec(&state);
                (client, selection.extract(&model))
            })
            .collect();
    }
    clients
        .par_iter()
        .map(|&client| {
            let mut model = template.clone();
            model.set_state_vec(init_state);
            let mut opt = Sgd::new(cfg.sgd());
            local_train(
                &mut model,
                &fd.clients[client],
                &mut opt,
                warmup_epochs,
                cfg.batch_size,
                cfg.seed,
                client,
                0, // warm-up is round 0
            );
            (client, selection.extract(&model))
        })
        .collect()
}

/// Eq. 3: the m×m proximity matrix of pairwise distances between clients'
/// partial weight vectors.
pub fn proximity_matrix(weights: &[Vec<f32>], metric: Metric) -> ProximityMatrix {
    ProximityMatrix::from_fn(weights.len(), |i, j| metric.eval(&weights[i], &weights[j]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_data::DatasetProfile;
    use fedclust_fl::engine::init_model;

    fn two_group_fd(seed: u64) -> FederatedDataset {
        let groups: Vec<Vec<usize>> = (0..6)
            .map(|c| {
                if c < 3 {
                    (0..5).collect()
                } else {
                    (5..10).collect()
                }
            })
            .collect();
        FederatedDataset::build_grouped(
            DatasetProfile::FmnistLike,
            &groups,
            &fedclust_data::federated::FederatedConfig {
                num_clients: 6,
                samples_per_class: 30,
                train_fraction: 0.8,
                seed,
            },
        )
    }

    #[test]
    fn final_layer_upload_is_much_smaller_than_full() {
        let fd = two_group_fd(0);
        let cfg = FlConfig::tiny(0);
        let model = init_model(&fd, &cfg);
        let fl = WeightSelection::FinalLayer.upload_len(&model);
        let full = WeightSelection::FullModel.upload_len(&model);
        assert!(fl * 2 < full, "final {} full {}", fl, full);
    }

    #[test]
    fn same_group_clients_have_closer_final_layers() {
        let fd = two_group_fd(1);
        let mut cfg = FlConfig::tiny(1);
        cfg.local_epochs = 2;
        let template = init_model(&fd, &cfg);
        let init_state = template.state_vec();
        let weights = collect_partial_weights(
            &fd,
            &cfg,
            &template,
            &init_state,
            2,
            WeightSelection::FinalLayer,
        );
        let m = proximity_matrix(&weights, Metric::L2);
        // Mean intra-group distance must be below mean inter-group distance:
        // the core empirical claim of the paper (§3.3).
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..6 {
            for j in (i + 1)..6 {
                if (i < 3) == (j < 3) {
                    intra.push(m.get(i, j));
                } else {
                    inter.push(m.get(i, j));
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&intra) < mean(&inter),
            "intra {} inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn block_selection_extracts_named_blocks() {
        let fd = two_group_fd(2);
        let cfg = FlConfig::tiny(2);
        let model = init_model(&fd, &cfg);
        let blocks = model.param_blocks();
        for (i, b) in blocks.iter().enumerate() {
            let v = WeightSelection::Block(i).extract(&model);
            assert_eq!(v.len(), b.len);
        }
        // Final layer == last block.
        let last = WeightSelection::Block(blocks.len() - 1).extract(&model);
        assert_eq!(last, WeightSelection::FinalLayer.extract(&model));
    }

    #[test]
    fn collection_is_deterministic() {
        let fd = two_group_fd(3);
        let cfg = FlConfig::tiny(3);
        let template = init_model(&fd, &cfg);
        let s = template.state_vec();
        let a = collect_partial_weights(&fd, &cfg, &template, &s, 1, WeightSelection::FinalLayer);
        let b = collect_partial_weights(&fd, &cfg, &template, &s, 1, WeightSelection::FinalLayer);
        assert_eq!(a, b);
    }
}
