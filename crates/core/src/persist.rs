//! Persisting trained federations.
//!
//! A FedClust server must retain, beyond the cluster models themselves,
//! the per-cluster representative partial weights so newcomers can be
//! incorporated later (Algorithm 2). [`SavedFederation`] is the
//! serializable snapshot of everything the server needs, and it restores
//! to a fully working [`TrainedFederation`] — model template included —
//! in a fresh process.

use crate::algorithm::TrainedFederation;
use crate::clustering::ClusteringOutcome;
use fedclust_nn::models::ModelSpec;
use fedclust_tensor::rng::{derive, streams};
use serde::{Deserialize, Serialize};

/// Why a [`SavedFederation`] could not be restored: the snapshot is
/// internally inconsistent or does not match the architecture it claims.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoreError(String);

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt federation snapshot: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// Serializable snapshot of a trained FedClust federation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedFederation {
    /// Architecture to rebuild the template from.
    pub model_spec: ModelSpec,
    /// Dataset geometry `(channels, height, width, classes)`.
    pub geometry: (usize, usize, usize, usize),
    /// The initial broadcast state θ⁰.
    pub init_state: Vec<f32>,
    /// Cluster id per original client.
    pub labels: Vec<usize>,
    /// One trained state vector per cluster.
    pub cluster_states: Vec<Vec<f32>>,
    /// Per-cluster representative partial weights (Algorithm 2's anchors).
    pub representatives: Vec<Vec<f32>>,
    /// The clustering outcome (λ, cluster count).
    pub outcome: ClusteringOutcome,
}

impl SavedFederation {
    /// Snapshot a trained federation.
    pub fn from_federation(federation: &TrainedFederation) -> Self {
        SavedFederation {
            model_spec: federation.model_spec,
            geometry: federation.geometry,
            init_state: federation.init_state.clone(),
            labels: federation.labels.clone(),
            cluster_states: federation.cluster_states.clone(),
            representatives: federation.representatives.clone(),
            outcome: federation.outcome.clone(),
        }
    }

    /// Restore a working federation: rebuilds the model template from the
    /// spec/geometry and re-installs all saved state.
    ///
    /// # Errors
    /// Returns a descriptive [`RestoreError`] when the snapshot is
    /// internally inconsistent (corrupted file or changed code): state
    /// vectors that do not match the rebuilt template's length, a cluster
    /// count that disagrees between the states, representatives and
    /// outcome, or labels pointing at nonexistent clusters.
    pub fn restore(&self) -> Result<TrainedFederation, RestoreError> {
        let (c, h, w, classes) = self.geometry;
        // The RNG only seeds throwaway initial weights; every parameter is
        // overwritten from the snapshot below.
        let mut rng = derive(0, &[streams::MODEL_INIT]);
        let mut template = self.model_spec.build(c, h, w, classes, &mut rng);
        if template.state_len() != self.init_state.len() {
            return Err(RestoreError(format!(
                "initial state has {} values but the rebuilt architecture needs {}",
                self.init_state.len(),
                template.state_len()
            )));
        }
        let k = self.outcome.num_clusters.max(1);
        if self.cluster_states.len() != k {
            return Err(RestoreError(format!(
                "{} cluster states for an outcome with {} clusters",
                self.cluster_states.len(),
                k
            )));
        }
        if self.representatives.len() != k {
            return Err(RestoreError(format!(
                "{} representatives for an outcome with {} clusters",
                self.representatives.len(),
                k
            )));
        }
        if let Some(bad) = self
            .cluster_states
            .iter()
            .find(|s| s.len() != template.state_len())
        {
            return Err(RestoreError(format!(
                "cluster state has {} values but the rebuilt architecture needs {}",
                bad.len(),
                template.state_len()
            )));
        }
        if let Some(bad) = self.labels.iter().find(|&&l| l >= k) {
            return Err(RestoreError(format!(
                "label {} points at a nonexistent cluster (only {} exist)",
                bad, k
            )));
        }
        template.set_state_vec(&self.init_state);
        Ok(TrainedFederation {
            template,
            model_spec: self.model_spec,
            geometry: self.geometry,
            init_state: self.init_state.clone(),
            labels: self.labels.clone(),
            cluster_states: self.cluster_states.clone(),
            representatives: self.representatives.clone(),
            outcome: self.outcome.clone(),
        })
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        // fedlint::allow(no-panic-paths): the snapshot is plain owned data (numbers, strings, vecs) with no fallible Serialize impls, so serialization cannot fail
        serde_json::to_string(self).expect("federation snapshot serializes")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FedClust;
    use crate::newcomer::assign_cluster;
    use fedclust_data::{DatasetProfile, FederatedDataset};
    use fedclust_fl::FlConfig;
    use fedclust_tensor::distance::Metric;

    fn trained() -> TrainedFederation {
        let groups: Vec<Vec<usize>> = (0..6)
            .map(|c| {
                if c < 3 {
                    (0..5).collect()
                } else {
                    (5..10).collect()
                }
            })
            .collect();
        let fd = FederatedDataset::build_grouped(
            DatasetProfile::FmnistLike,
            &groups,
            &fedclust_data::federated::FederatedConfig {
                num_clients: 6,
                samples_per_class: 30,
                train_fraction: 0.8,
                seed: 13,
            },
        );
        let mut cfg = FlConfig::tiny(13);
        cfg.rounds = 2;
        FedClust::default().run_detailed(&fd, &cfg).1
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let federation = trained();
        let saved = SavedFederation::from_federation(&federation);
        let json = saved.to_json();
        let back = SavedFederation::from_json(&json).unwrap();
        assert_eq!(back.labels, federation.labels);
        assert_eq!(back.cluster_states, federation.cluster_states);
        assert_eq!(back.representatives, federation.representatives);
        assert_eq!(back.outcome, federation.outcome);
    }

    #[test]
    fn restored_federation_assigns_newcomers_identically() {
        let federation = trained();
        let saved = SavedFederation::from_federation(&federation);
        let restored = SavedFederation::from_json(&saved.to_json())
            .unwrap()
            .restore()
            .unwrap();
        // Probe with each representative: assignments must match the
        // original federation's.
        for rep in &federation.representatives {
            assert_eq!(
                assign_cluster(&federation, rep, Metric::L2),
                assign_cluster(&restored, rep, Metric::L2)
            );
        }
        // The restored template carries θ⁰ exactly.
        assert_eq!(restored.template.state_vec(), federation.init_state);
    }

    #[test]
    fn corrupted_snapshot_is_rejected() {
        let federation = trained();

        let mut saved = SavedFederation::from_federation(&federation);
        saved.init_state.pop();
        let err = saved.restore().err().expect("truncated init_state");
        assert!(err.to_string().contains("initial state"), "{}", err);

        let mut saved = SavedFederation::from_federation(&federation);
        saved.cluster_states.pop();
        assert!(saved.restore().is_err(), "missing cluster state");

        let mut saved = SavedFederation::from_federation(&federation);
        saved.representatives.pop();
        assert!(saved.restore().is_err(), "missing representative");

        let mut saved = SavedFederation::from_federation(&federation);
        if let Some(s) = saved.cluster_states.first_mut() {
            s.pop();
        }
        assert!(saved.restore().is_err(), "truncated cluster state");

        let mut saved = SavedFederation::from_federation(&federation);
        saved.labels[0] = 999;
        assert!(saved.restore().is_err(), "out-of-range label");
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(SavedFederation::from_json("{not json").is_err());
    }
}
