//! FedClust, Algorithm 1: the full method.

use crate::clustering::{cluster_clients, ClusteringOutcome, LambdaSelect};
use crate::persist::SavedFederation;
use crate::proximity::{collect_partial_weights_for, proximity_matrix, WeightSelection};
use fedclust_cluster::hac::Linkage;
use fedclust_data::FederatedDataset;
use fedclust_fl::checkpoint::{
    check_len, run_without_checkpoints, Checkpoint, CheckpointError, Checkpointer, MethodState,
};
use fedclust_fl::engine::{
    average_accuracy, evaluate_clients, init_model, sample_clients, train_round, weighted_average,
};
use fedclust_fl::faults::Transport;
use fedclust_fl::methods::FlMethod;
use fedclust_fl::metrics::{RoundRecord, RunResult};
use fedclust_fl::FlConfig;
use fedclust_nn::Model;
use serde::{Deserialize, Serialize};

/// FedClust configuration (Algorithm 1's inputs beyond the shared
/// [`FlConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedClust {
    /// Clustering threshold λ (fixed, or data-driven largest-gap).
    pub lambda: LambdaSelect,
    /// Linkage criterion for the hierarchical clustering.
    pub linkage: Linkage,
    /// Warm-up local epochs before partial weights are collected
    /// ("a few local iterations", paper §3.4).
    pub warmup_epochs: usize,
    /// Which weights clients upload for clustering. [`WeightSelection::FinalLayer`]
    /// is the paper's method; [`WeightSelection::FullModel`] is the ablation.
    pub selection: WeightSelection,
    /// Distance metric for the proximity matrix (paper: L2, Eq. 3).
    pub metric: fedclust_tensor::distance::Metric,
}

impl Default for FedClust {
    fn default() -> Self {
        FedClust {
            lambda: LambdaSelect::Auto,
            linkage: Linkage::Average,
            warmup_epochs: 2,
            selection: WeightSelection::FinalLayer,
            metric: fedclust_tensor::distance::Metric::L2,
        }
    }
}

/// Everything the server retains after a FedClust run: the trained cluster
/// models, the assignment, and the per-cluster representative partial
/// weights needed to incorporate newcomers (Algorithm 2).
pub struct TrainedFederation {
    /// The shared model template (architecture).
    pub template: Model,
    /// The model spec the template was built from (for persistence).
    pub model_spec: fedclust_nn::models::ModelSpec,
    /// Dataset geometry `(channels, height, width, classes)` the template
    /// was built for (for persistence).
    pub geometry: (usize, usize, usize, usize),
    /// The initial broadcast state θ⁰ (newcomers warm up from this).
    pub init_state: Vec<f32>,
    /// Cluster id per original client.
    pub labels: Vec<usize>,
    /// One trained state vector per cluster.
    pub cluster_states: Vec<Vec<f32>>,
    /// Per-cluster representative partial weights: the centroid of member
    /// partial weights, in the same [`WeightSelection`] space clients
    /// upload in.
    pub representatives: Vec<Vec<f32>>,
    /// The clustering outcome (λ used, cluster count).
    pub outcome: ClusteringOutcome,
}

impl FedClust {
    /// Run FedClust and keep the trained federation for post-hoc use
    /// (newcomer incorporation, cluster inspection). The returned
    /// [`RunResult`] is identical to what [`FlMethod::run`] reports.
    pub fn run_detailed(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
    ) -> (RunResult, TrainedFederation) {
        run_without_checkpoints(|ckpt| self.run_detailed_resumable(fd, cfg, ckpt))
    }

    /// [`FedClust::run_detailed`] with checkpoint/resume support.
    ///
    /// FedClust's value is concentrated in its one-shot round-0 state
    /// (proximity clustering, representatives), so the checkpoint embeds a
    /// full [`SavedFederation`] snapshot and a post-clustering checkpoint
    /// is written immediately (`next_round = 0`: clustering done, no
    /// training yet) regardless of the configured cadence. A resumed run
    /// never re-clusters — it restores the assignment and continues the
    /// per-cluster training rounds bit-identically.
    pub fn run_detailed_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<(RunResult, TrainedFederation), CheckpointError> {
        let template = init_model(fd, cfg);
        let state_len = template.state_len();
        let init_state = template.state_vec();
        let mut transport = Transport::new(cfg);

        if let Some(cp) = ckpt.resume_point(self.name(), cfg.seed)? {
            let MethodState::FedClust { federation_json } = cp.state else {
                return Err(CheckpointError::WrongState(format!(
                    "FedClust cannot resume from a {} checkpoint",
                    cp.state.kind()
                )));
            };
            let saved = SavedFederation::from_json(&federation_json).map_err(|e| {
                CheckpointError::Corrupt(format!("embedded federation snapshot: {}", e))
            })?;
            let geometry = (fd.channels, fd.height, fd.width, fd.num_classes);
            if saved.geometry != geometry {
                return Err(CheckpointError::Mismatch(format!(
                    "snapshot geometry {:?} does not match this dataset's {:?}",
                    saved.geometry, geometry
                )));
            }
            check_len(
                "cluster labels",
                saved.outcome.labels.len(),
                fd.num_clients(),
            )?;
            check_len("initial state", saved.init_state.len(), state_len)?;
            let k = saved.outcome.num_clusters.max(1);
            check_len("cluster states", saved.cluster_states.len(), k)?;
            check_len("representatives", saved.representatives.len(), k)?;
            for s in &saved.cluster_states {
                check_len("cluster state", s.len(), state_len)?;
            }
            for l in &saved.outcome.labels {
                if *l >= k {
                    return Err(CheckpointError::Mismatch(format!(
                        "cluster label {} out of range for {} clusters",
                        l, k
                    )));
                }
            }
            transport.restore_comm_state(cp.meter, cp.telemetry, cp.residuals);
            return self.train_clusters(
                fd,
                cfg,
                ckpt,
                template,
                init_state,
                saved.outcome,
                saved.representatives,
                saved.cluster_states,
                cp.history,
                cp.next_round,
                transport,
            );
        }

        // ---- Round 0 (Algorithm 1, lines 2–7): one-shot clustering. ----
        // Server broadcasts θ⁰ to all clients; each the downlink reaches
        // trains briefly and uploads only the selected partial weights.
        // Clustering must tolerate missing partials: it runs over whatever
        // uploads survive the uplink and the quarantine screen.
        let upload_len = self.selection.upload_len(&template);
        let all_clients: Vec<usize> = (0..fd.num_clients()).collect();
        let reached = transport.broadcast(0, &all_clients, state_len);
        let collected = collect_partial_weights_for(
            fd,
            cfg,
            &template,
            &init_state,
            self.warmup_epochs,
            self.selection,
            &reached,
        );
        // Clients the worker fleet wrote off (networked mode only — the
        // local path returns everyone the broadcast reached) count as
        // uplink losses for telemetry.
        let lost: Vec<usize> = {
            let got: std::collections::BTreeSet<usize> =
                collected.iter().map(|(c, _)| *c).collect();
            reached
                .iter()
                .copied()
                .filter(|c| !got.contains(c))
                .collect()
        };
        transport.record_remote_losses(&lost);
        // A stale round-0 corruption replays the untrained partial weights.
        let init_partial = self.selection.extract(&template);
        let mut survivors: Vec<usize> = Vec::with_capacity(reached.len());
        let mut partials: Vec<Vec<f32>> = Vec::with_capacity(reached.len());
        for (client, mut partial) in collected {
            if transport.uplink(
                0,
                client,
                &mut partial,
                Some(&init_partial),
                Some(&init_partial),
            ) && transport.screen(&partial, upload_len)
            {
                survivors.push(client);
                partials.push(partial);
            }
        }

        let (outcome, representatives) = if survivors.len() >= 2 {
            let matrix = proximity_matrix(&partials, self.metric);
            let sub = cluster_clients(&matrix, self.linkage, self.lambda);
            let k = sub.num_clusters.max(1);
            // Per-cluster representative partial weights (for Algorithm 2),
            // centroids of the surviving members.
            let representatives: Vec<Vec<f32>> = (0..k)
                .map(|ci| {
                    let items: Vec<(&[f32], f32)> = partials
                        .iter()
                        .zip(&sub.labels)
                        .filter(|(_, &l)| l == ci)
                        .map(|(p, _)| (p.as_slice(), 1.0))
                        .collect();
                    weighted_average(&items)
                })
                .collect();
            // Clients with no usable partial join the largest cluster —
            // the safest default under Eq. 2's weighted aggregation.
            let mut sizes = vec![0usize; k];
            for &l in &sub.labels {
                sizes[l] += 1;
            }
            let largest = (0..k).max_by_key(|&ci| sizes[ci]).unwrap_or(0);
            let mut labels = vec![largest; fd.num_clients()];
            for (&client, &l) in survivors.iter().zip(&sub.labels) {
                labels[client] = l;
            }
            (
                ClusteringOutcome {
                    labels,
                    num_clusters: sub.num_clusters,
                    lambda: sub.lambda,
                },
                representatives,
            )
        } else {
            // Degenerate round 0 (≤1 usable partial): fall back to a single
            // global cluster so training can still proceed.
            let rep = partials.into_iter().next().unwrap_or(init_partial);
            (
                ClusteringOutcome {
                    labels: vec![0; fd.num_clients()],
                    num_clusters: 1,
                    lambda: 0.0,
                },
                vec![rep],
            )
        };
        let k = outcome.num_clusters.max(1);
        let states: Vec<Vec<f32>> = vec![init_state.clone(); k];

        // The one-shot clustering artifact is the expensive, never-cheaply-
        // recomputable part of a FedClust run: snapshot it immediately,
        // regardless of the checkpoint cadence.
        ckpt.save_now(&Checkpoint {
            method: self.name().to_string(),
            seed: cfg.seed,
            next_round: 0,
            meter: transport.meter().clone(),
            telemetry: transport.telemetry(),
            history: Vec::new(),
            state: MethodState::FedClust {
                federation_json: federation_json(
                    cfg,
                    fd,
                    &init_state,
                    &outcome,
                    &representatives,
                    &states,
                ),
            },
            residuals: transport.codec_residuals(),
        })?;

        self.train_clusters(
            fd,
            cfg,
            ckpt,
            template,
            init_state,
            outcome,
            representatives,
            states,
            Vec::new(),
            0,
            transport,
        )
    }

    /// Rounds 1..T (Algorithm 1, lines 9–14): per-cluster FedAvg, shared by
    /// the fresh and resumed paths.
    #[allow(clippy::too_many_arguments)]
    fn train_clusters(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
        template: Model,
        init_state: Vec<f32>,
        outcome: ClusteringOutcome,
        representatives: Vec<Vec<f32>>,
        mut states: Vec<Vec<f32>>,
        mut history: Vec<RoundRecord>,
        start_round: usize,
        mut transport: Transport,
    ) -> Result<(RunResult, TrainedFederation), CheckpointError> {
        let k = outcome.num_clusters.max(1);
        for round in start_round..cfg.rounds {
            let sampled = sample_clients(fd.num_clients(), cfg, round + 1);
            for (ci, state) in states.iter_mut().enumerate() {
                let members: Vec<usize> = sampled
                    .iter()
                    .copied()
                    .filter(|&c| outcome.labels[c] == ci)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let updates = train_round(
                    fd,
                    cfg,
                    &template,
                    state,
                    &members,
                    round + 1,
                    None,
                    &mut transport,
                );
                if updates.is_empty() {
                    // Every upload lost or quarantined: the cluster skips
                    // this round and carries its model forward.
                    continue;
                }
                let items: Vec<(&[f32], f32)> = updates
                    .iter()
                    .map(|u| (u.state.as_slice(), u.weight))
                    .collect();
                *state = weighted_average(&items);
            }
            if cfg.should_eval(round) {
                let per_client =
                    evaluate_clients(fd, &template, |c| states[outcome.labels[c]].as_slice());
                history.push(RoundRecord {
                    round: round + 1,
                    avg_acc: average_accuracy(&per_client),
                    cum_mb: transport.meter().total_mb(),
                });
            }

            ckpt.on_round_end(round, || Checkpoint {
                method: self.name().to_string(),
                seed: cfg.seed,
                next_round: round + 1,
                meter: transport.meter().clone(),
                telemetry: transport.telemetry(),
                history: history.clone(),
                state: MethodState::FedClust {
                    federation_json: federation_json(
                        cfg,
                        fd,
                        &init_state,
                        &outcome,
                        &representatives,
                        &states,
                    ),
                },
                residuals: transport.codec_residuals(),
            })?;
        }

        let per_client_acc =
            evaluate_clients(fd, &template, |c| states[outcome.labels[c]].as_slice());
        let result = RunResult {
            method: self.name().to_string(),
            final_acc: average_accuracy(&per_client_acc),
            per_client_acc,
            history,
            num_clusters: Some(k),
            total_mb: transport.meter().total_mb(),
            faults: transport.telemetry(),
        };
        let federation = TrainedFederation {
            template,
            model_spec: cfg.model,
            geometry: (fd.channels, fd.height, fd.width, fd.num_classes),
            init_state,
            labels: outcome.labels.clone(),
            cluster_states: states,
            representatives,
            outcome,
        };
        Ok((result, federation))
    }
}

/// Serialize the current federation state into the [`SavedFederation`] JSON
/// a FedClust checkpoint embeds.
fn federation_json(
    cfg: &FlConfig,
    fd: &FederatedDataset,
    init_state: &[f32],
    outcome: &ClusteringOutcome,
    representatives: &[Vec<f32>],
    states: &[Vec<f32>],
) -> String {
    SavedFederation {
        model_spec: cfg.model,
        geometry: (fd.channels, fd.height, fd.width, fd.num_classes),
        init_state: init_state.to_vec(),
        labels: outcome.labels.clone(),
        cluster_states: states.to_vec(),
        representatives: representatives.to_vec(),
        outcome: outcome.clone(),
    }
    .to_json()
}

impl FlMethod for FedClust {
    fn name(&self) -> &'static str {
        "FedClust"
    }

    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        self.run_detailed(fd, cfg).0
    }

    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        Ok(self.run_detailed_resumable(fd, cfg, ckpt)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_cluster::metrics::adjusted_rand_index;
    use fedclust_data::DatasetProfile;

    fn two_group_fd(seed: u64, clients: usize) -> FederatedDataset {
        let groups: Vec<Vec<usize>> = (0..clients)
            .map(|c| {
                if c < clients / 2 {
                    (0..5).collect()
                } else {
                    (5..10).collect()
                }
            })
            .collect();
        FederatedDataset::build_grouped(
            DatasetProfile::FmnistLike,
            &groups,
            &fedclust_data::federated::FederatedConfig {
                num_clients: clients,
                samples_per_class: 40,
                train_fraction: 0.8,
                seed,
            },
        )
    }

    #[test]
    fn one_shot_clustering_recovers_ground_truth() {
        let fd = two_group_fd(0, 8);
        let mut cfg = FlConfig::tiny(0);
        cfg.local_epochs = 2;
        let (result, federation) = FedClust::default().run_detailed(&fd, &cfg);
        let truth = fd.ground_truth_groups();
        let ari = adjusted_rand_index(&federation.labels, &truth);
        assert!(
            ari > 0.8,
            "ARI {} labels {:?} truth {:?}",
            ari,
            federation.labels,
            truth
        );
        assert_eq!(result.num_clusters, Some(2));
    }

    #[test]
    fn fedclust_beats_fedavg_under_label_skew() {
        let fd = two_group_fd(1, 8);
        let mut cfg = FlConfig::tiny(1);
        cfg.rounds = 5;
        let fedclust = FedClust::default().run(&fd, &cfg);
        let fedavg = fedclust_fl::methods::FedAvg.run(&fd, &cfg);
        assert!(
            fedclust.final_acc >= fedavg.final_acc,
            "FedClust {} vs FedAvg {}",
            fedclust.final_acc,
            fedavg.final_acc
        );
    }

    #[test]
    fn clustering_round_uploads_are_partial() {
        // FedClust's round-0 uplink must be far below one full model per
        // client; downstream rounds behave like FedAvg within clusters.
        let fd = two_group_fd(2, 6);
        let mut cfg = FlConfig::tiny(2);
        cfg.rounds = 1;
        let fedclust = FedClust::default().run(&fd, &cfg);
        assert!(fedclust.total_mb > 0.0);
        // Comparable FedAvg run with one extra round (FedClust's round 0
        // costs a broadcast + partial upload, less than a full round).
        let mut cfg2 = cfg;
        cfg2.rounds = 2;
        let fedavg = fedclust_fl::methods::FedAvg.run(&fd, &cfg2);
        assert!(fedclust.total_mb < fedavg.total_mb * 2.0);
    }

    #[test]
    fn detailed_run_exposes_cluster_models_and_representatives() {
        let fd = two_group_fd(3, 6);
        let cfg = FlConfig::tiny(3);
        let (_, federation) = FedClust::default().run_detailed(&fd, &cfg);
        let k = federation.outcome.num_clusters;
        assert_eq!(federation.cluster_states.len(), k);
        assert_eq!(federation.representatives.len(), k);
        let upload = WeightSelection::FinalLayer.upload_len(&federation.template);
        for rep in &federation.representatives {
            assert_eq!(rep.len(), upload);
        }
        assert_eq!(federation.labels.len(), 6);
    }

    #[test]
    fn full_model_ablation_runs() {
        let fd = two_group_fd(4, 6);
        let cfg = FlConfig::tiny(4);
        let ablated = FedClust {
            selection: WeightSelection::FullModel,
            ..FedClust::default()
        };
        let r = ablated.run(&fd, &cfg);
        assert!(r.final_acc.is_finite());
    }
}
