//! # fedclust
//!
//! FedClust: one-shot, weight-driven clustered federated learning —
//! a Rust reproduction of *"FedClust: Tackling Data Heterogeneity in
//! Federated Learning through Weight-Driven Client Clustering"*
//! (Islam et al., ICPP 2024).
//!
//! The method in one paragraph: after a single warm-up round in which every
//! client briefly trains the broadcast initial model on its own data, each
//! client uploads only the **final-layer weights and bias** of its local
//! model. Those partial weights implicitly encode the client's label
//! distribution, so the server can build an L2 proximity matrix (Eq. 3),
//! run agglomerative hierarchical clustering with a distance threshold λ
//! (Algorithm 1), and obtain a data-driven number of clusters in **one
//! shot** — no predefined cluster count, no repeated re-clustering rounds.
//! From then on training is per-cluster FedAvg (Eq. 2). Newcomers are
//! assigned to the closest cluster by the same partial-weight distance
//! (Algorithm 2, Eq. 4).
//!
//! Crate layout:
//!
//! * [`proximity`] — warm-up training and partial-weight collection, and
//!   the Eq. 3 proximity matrix;
//! * [`clustering`] — the λ-threshold hierarchical clustering step with
//!   fixed or data-driven (largest-gap) λ selection;
//! * [`algorithm`] — [`algorithm::FedClust`], the full method as an
//!   [`fedclust_fl::FlMethod`], plus [`algorithm::TrainedFederation`] for
//!   post-hoc use of the trained cluster models;
//! * [`newcomer`] — Algorithm 2: incorporating clients that join after
//!   federation;
//! * [`lambda_sweep`] — the generalization/personalization trade-off sweep
//!   behind Fig. 4.
//!
//! # Quickstart
//!
//! ```
//! use fedclust::algorithm::FedClust;
//! use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
//! use fedclust_fl::{FlConfig, FlMethod};
//!
//! // A small federation: 8 clients, each holding 20% of the labels.
//! let dataset = FederatedDataset::build(
//!     DatasetProfile::FmnistLike,
//!     Partition::LabelSkew { fraction: 0.2 },
//!     &fedclust_data::federated::FederatedConfig {
//!         num_clients: 8,
//!         samples_per_class: 30,
//!         train_fraction: 0.8,
//!         seed: 1,
//!     },
//! );
//! let mut cfg = FlConfig::tiny(1);
//! cfg.rounds = 3;
//! let result = FedClust::default().run(&dataset, &cfg);
//! assert!(result.final_acc > 0.0);
//! assert!(result.num_clusters.unwrap() >= 1);
//! ```

pub mod algorithm;
pub mod clustering;
pub mod lambda_sweep;
pub mod newcomer;
pub mod persist;
pub mod proximity;

pub use algorithm::{FedClust, TrainedFederation};
pub use clustering::LambdaSelect;
pub use persist::{RestoreError, SavedFederation};
