//! The one-shot clustering step: `HC(M, λ)` from Algorithm 1.

use fedclust_cluster::hac::{agglomerative, Dendrogram, Linkage};

use fedclust_cluster::ProximityMatrix;
use serde::{Deserialize, Serialize};

/// How the clustering threshold λ is chosen.
///
/// The paper treats λ as a user-defined hyper-parameter chosen per dataset
/// (its Fig. 4 sweeps it); its conclusion lists data-driven λ selection as
/// future work. This reproduction ships two data-driven selectors —
/// [`LambdaSelect::AutoGap`] and [`LambdaSelect::AutoSilhouette`] (the
/// default) — standing in for the paper's hand tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LambdaSelect {
    /// Use a fixed threshold λ.
    Fixed(f32),
    /// Choose λ at the largest merge-distance gap. Simple, but biased
    /// toward very coarse cuts (the top merges have the biggest absolute
    /// gaps); kept for comparison and for clean two-group data.
    AutoGap,
    /// Choose λ at the largest *relative* jump between consecutive merge
    /// distances, falling back on a dispersion rule when no jump stands
    /// out (see [`cluster_clients`]). Same-distribution clients merge at a
    /// low plateau of distances and cross-distribution merges jump several
    /// fold, so the ratio — unlike [`LambdaSelect::AutoGap`]'s absolute
    /// difference — finds the boundary regardless of how many groups there
    /// are. This emulates the per-dataset λ tuning the paper performs by
    /// hand, and is the reproduction's default.
    Auto,
}

/// Outcome of the one-shot clustering step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringOutcome {
    /// Cluster id per client (0-based, compact).
    pub labels: Vec<usize>,
    /// Number of clusters formed.
    pub num_clusters: usize,
    /// The λ actually used (the fixed value, or the auto-selected one).
    pub lambda: f32,
}

/// Run `HC(M, λ)`: agglomerative clustering of the proximity matrix and a
/// threshold cut.
pub fn cluster_clients(
    matrix: &ProximityMatrix,
    linkage: Linkage,
    lambda: LambdaSelect,
) -> ClusteringOutcome {
    let dendro = agglomerative(matrix, linkage);
    match lambda {
        LambdaSelect::Auto => plateau_cut(&dendro),
        other => outcome_from_dendrogram(&dendro, other),
    }
}

/// Fallback trigger: if even the *first* merge distance is a sizeable
/// fraction of the largest, there is no "near-duplicate group" plateau.
const NO_PLATEAU_FRACTION: f32 = 0.25;
/// A merge ends the plateau when it exceeds this multiple of the running
/// median of the merges before it.
const PLATEAU_BREAK_FACTOR: f32 = 1.9;
/// Fallback dispersion threshold: merge-distance coefficient of variation
/// above this means heterogeneous clients (personalization regime), below
/// means homogeneous (one cluster).
const FALLBACK_CV: f32 = 0.18;

/// Data-driven λ selection by *plateau detection* on the merge profile.
///
/// Clients with the same underlying distribution produce near-duplicate
/// partial weights, so the dendrogram starts with a plateau of small
/// intra-group merge distances that drifts up slowly (multi-member merges
/// average in more spread) and then jumps when the first cross-group merge
/// happens. Single-gap detectors are fooled by the drift; instead we walk
/// the profile and stop at the first merge that exceeds
/// [`PLATEAU_BREAK_FACTOR`] × the running median:
///
/// 1. if the first merge is already ≥ [`NO_PLATEAU_FRACTION`] of the last,
///    there is no plateau (no duplicate groups) — fall back to the
///    dispersion rule below;
/// 2. otherwise cut at the plateau break (λ = midpoint of the last plateau
///    merge and the breaking merge);
/// 3. fallback: if the merge distances are dispersed (coefficient of
///    variation above [`FALLBACK_CV`] — clients differ a lot but without
///    block structure, e.g. unique label sets or Dirichlet mixtures) cut
///    at the 25th percentile so only near-duplicates share a model
///    (personalization regime); tightly concentrated distances mean
///    homogeneous clients — one cluster (globalization regime,
///    FedAvg-like).
fn plateau_cut(dendro: &Dendrogram) -> ClusteringOutcome {
    let n = dendro.num_items();
    let merges = dendro.merges();
    if n < 3 || merges.len() < 2 {
        return outcome_from_dendrogram(dendro, LambdaSelect::AutoGap);
    }
    let d_max = merges.last().map_or(0.0, |m| m.distance).max(1e-12);
    if merges[0].distance < NO_PLATEAU_FRACTION * d_max {
        // There is a plateau; walk until it breaks.
        let mut plateau: Vec<f32> = vec![merges[0].distance];
        let mut found: Option<(usize, f32)> = None; // (break index, ratio)
        for (i, merge) in merges.iter().enumerate().skip(1) {
            let mut sorted = plateau.clone();
            sorted.sort_by(f32::total_cmp);
            let median = sorted[sorted.len() / 2].max(0.02 * d_max);
            if merge.distance > PLATEAU_BREAK_FACTOR * median {
                found = Some((i, merge.distance / median));
                break;
            }
            plateau.push(merge.distance);
        }
        match found {
            Some((i, ratio)) => {
                // Accept only a *convincing* break: either a strong jump,
                // or an early one. A weak break after most merges means
                // the distances form a drifting continuum (no duplicate
                // groups) — fall through to the dispersion fallback.
                let frac = i as f32 / merges.len() as f32;
                if ratio >= 3.0 || frac < 0.6 {
                    let lambda = 0.5 * (merges[i - 1].distance + merges[i].distance);
                    let labels = dendro.cut_at(lambda);
                    let num_clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
                    return ClusteringOutcome {
                        labels,
                        num_clusters,
                        lambda,
                    };
                }
            }
            None => {
                // The plateau never breaks: one smoothly connected group.
                return ClusteringOutcome {
                    labels: vec![0; n],
                    num_clusters: 1,
                    lambda: d_max + 1.0,
                };
            }
        }
    }
    // Fallback: no block structure. Decide the regime by dispersion.
    let n_m = merges.len() as f32;
    let mean = merges.iter().map(|m| m.distance).sum::<f32>() / n_m;
    let var = merges
        .iter()
        .map(|m| (m.distance - mean) * (m.distance - mean))
        .sum::<f32>()
        / n_m;
    let cv = var.sqrt() / mean.max(1e-12);
    if cv > FALLBACK_CV {
        let lambda = merges[merges.len() / 4].distance;
        let labels = dendro.cut_at(lambda);
        let num_clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
        ClusteringOutcome {
            labels,
            num_clusters,
            lambda,
        }
    } else {
        let lambda = merges.last().map_or(f32::INFINITY, |m| m.distance + 1.0);
        ClusteringOutcome {
            labels: vec![0; n],
            num_clusters: 1,
            lambda,
        }
    }
}
/// Cut an existing dendrogram (lets λ sweeps reuse one clustering run).
///
/// # Panics
/// Panics for [`LambdaSelect::Auto`] — use [`cluster_clients`] for that.
pub fn outcome_from_dendrogram(dendro: &Dendrogram, lambda: LambdaSelect) -> ClusteringOutcome {
    let (labels, lam) = match lambda {
        LambdaSelect::Fixed(l) => (dendro.cut_at(l), l),
        LambdaSelect::AutoGap => dendro.largest_gap_cut(),
        LambdaSelect::Auto => {
            // fedlint::allow(no-panic-paths): documented panic — the # Panics section forbids Auto here; reaching this is a caller bug, not a runtime fault
            panic!("LambdaSelect::Auto needs the full HC run; use cluster_clients")
        }
    };
    let num_clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
    ClusteringOutcome {
        labels,
        num_clusters,
        lambda: lam,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_group_matrix() -> ProximityMatrix {
        let pos = [0.0f32, 0.5, 1.0, 50.0, 50.5, 51.0];
        ProximityMatrix::from_fn(6, |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn auto_gap_finds_two_clusters() {
        let m = two_group_matrix();
        let out = cluster_clients(&m, Linkage::Average, LambdaSelect::AutoGap);
        assert_eq!(out.num_clusters, 2);
        assert_eq!(out.labels[0], out.labels[2]);
        assert_ne!(out.labels[0], out.labels[3]);
        assert!(out.lambda > 1.0 && out.lambda < 50.0);
    }

    #[test]
    fn fixed_lambda_extremes_interpolate_global_to_local() {
        // The paper's generalization/personalization dial: large λ → one
        // global cluster (FedAvg), tiny λ → all-singleton (Local).
        let m = two_group_matrix();
        let global = cluster_clients(&m, Linkage::Average, LambdaSelect::Fixed(1e9));
        assert_eq!(global.num_clusters, 1);
        let local = cluster_clients(&m, Linkage::Average, LambdaSelect::Fixed(0.01));
        assert_eq!(local.num_clusters, 6);
        let mid = cluster_clients(&m, Linkage::Average, LambdaSelect::Fixed(5.0));
        assert_eq!(mid.num_clusters, 2);
    }

    #[test]
    fn lambda_monotonically_reduces_clusters() {
        let m = two_group_matrix();
        let dendro = agglomerative(&m, Linkage::Average);
        let mut prev = usize::MAX;
        for lambda in [0.1f32, 0.6, 1.1, 10.0, 100.0] {
            let out = outcome_from_dendrogram(&dendro, LambdaSelect::Fixed(lambda));
            assert!(
                out.num_clusters <= prev,
                "λ {} gave {}",
                lambda,
                out.num_clusters
            );
            prev = out.num_clusters;
        }
    }
}
