//! The λ sweep behind Fig. 4: the generalization ↔ personalization dial.
//!
//! One warm-up + clustering pass produces a dendrogram; every λ cut of that
//! dendrogram is then trained and evaluated. Large λ merges everyone into
//! one cluster (FedAvg-like, fully global); tiny λ leaves every client in
//! its own cluster (Local-like, fully personalized).

use crate::algorithm::FedClust;
use crate::clustering::{outcome_from_dendrogram, LambdaSelect};
use crate::proximity::{collect_partial_weights, proximity_matrix};
use fedclust_cluster::hac::agglomerative;
use fedclust_data::FederatedDataset;
use fedclust_fl::engine::{
    average_accuracy, evaluate_clients, init_model, sample_clients, train_round,
    weighted_average_or,
};
use fedclust_fl::faults::Transport;
use fedclust_fl::FlConfig;
use serde::{Deserialize, Serialize};

/// One point of the λ sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LambdaPoint {
    /// The threshold λ.
    pub lambda: f32,
    /// Number of clusters formed at this λ.
    pub num_clusters: usize,
    /// Final average local test accuracy.
    pub final_acc: f64,
}

/// Evenly spaced λ values spanning the dendrogram's merge-distance range
/// (plus a sub-minimum and a super-maximum point so the sweep reaches both
/// the all-singleton and the single-cluster regimes).
pub fn lambda_grid(
    fd: &FederatedDataset,
    cfg: &FlConfig,
    method: &FedClust,
    points: usize,
) -> Vec<f32> {
    let template = init_model(fd, cfg);
    let init_state = template.state_vec();
    let partials = collect_partial_weights(
        fd,
        cfg,
        &template,
        &init_state,
        method.warmup_epochs,
        method.selection,
    );
    let matrix = proximity_matrix(&partials, method.metric);
    let dendro = agglomerative(&matrix, method.linkage);
    let merges = dendro.merges();
    let (Some(first), Some(last)) = (merges.first(), merges.last()) else {
        return vec![1.0];
    };
    let (lo, hi) = (first.distance, last.distance);
    let mut grid = vec![lo * 0.5];
    let steps = points.saturating_sub(2).max(1);
    for i in 0..=steps {
        grid.push(lo + (hi - lo) * i as f32 / steps as f32 + 1e-6);
    }
    grid.push(hi * 1.5 + 1.0);
    grid
}

/// Run the sweep: cluster once, then train and evaluate each λ cut.
pub fn sweep(
    fd: &FederatedDataset,
    cfg: &FlConfig,
    method: &FedClust,
    lambdas: &[f32],
) -> Vec<LambdaPoint> {
    let template = init_model(fd, cfg);
    let init_state = template.state_vec();
    let partials = collect_partial_weights(
        fd,
        cfg,
        &template,
        &init_state,
        method.warmup_epochs,
        method.selection,
    );
    let matrix = proximity_matrix(&partials, method.metric);
    let dendro = agglomerative(&matrix, method.linkage);

    lambdas
        .iter()
        .map(|&lambda| {
            let outcome = outcome_from_dendrogram(&dendro, LambdaSelect::Fixed(lambda));
            let k = outcome.num_clusters.max(1);
            let mut states = vec![init_state.clone(); k];
            // Each λ cut trains under the same fault plan; the sweep only
            // reports accuracies, so the per-cut comm meter is discarded.
            let mut transport = Transport::new(cfg);
            for round in 0..cfg.rounds {
                let sampled = sample_clients(fd.num_clients(), cfg, round + 1);
                for (ci, state) in states.iter_mut().enumerate() {
                    let members: Vec<usize> = sampled
                        .iter()
                        .copied()
                        .filter(|&c| outcome.labels[c] == ci)
                        .collect();
                    if members.is_empty() {
                        continue;
                    }
                    let updates = train_round(
                        fd,
                        cfg,
                        &template,
                        state,
                        &members,
                        round + 1,
                        None,
                        &mut transport,
                    );
                    let items: Vec<(&[f32], f32)> = updates
                        .iter()
                        .map(|u| (u.state.as_slice(), u.weight))
                        .collect();
                    *state = weighted_average_or(&items, state);
                }
            }
            let per_client =
                evaluate_clients(fd, &template, |c| states[outcome.labels[c]].as_slice());
            LambdaPoint {
                lambda,
                num_clusters: k,
                final_acc: average_accuracy(&per_client),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_data::DatasetProfile;

    fn two_group_fd() -> FederatedDataset {
        let groups: Vec<Vec<usize>> = (0..6)
            .map(|c| {
                if c < 3 {
                    (0..5).collect()
                } else {
                    (5..10).collect()
                }
            })
            .collect();
        FederatedDataset::build_grouped(
            DatasetProfile::FmnistLike,
            &groups,
            &fedclust_data::federated::FederatedConfig {
                num_clients: 6,
                samples_per_class: 30,
                train_fraction: 0.8,
                seed: 5,
            },
        )
    }

    #[test]
    fn sweep_cluster_counts_decrease_with_lambda() {
        let fd = two_group_fd();
        let mut cfg = FlConfig::tiny(5);
        cfg.rounds = 2;
        let method = FedClust::default();
        let grid = lambda_grid(&fd, &cfg, &method, 4);
        assert!(grid.len() >= 3);
        let points = sweep(&fd, &cfg, &method, &grid);
        for w in points.windows(2) {
            assert!(
                w[0].num_clusters >= w[1].num_clusters,
                "λ {} → {} clusters then λ {} → {}",
                w[0].lambda,
                w[0].num_clusters,
                w[1].lambda,
                w[1].num_clusters
            );
        }
        // Extremes: all-singleton at the low end, one cluster at the top.
        assert_eq!(points.first().unwrap().num_clusters, 6);
        assert_eq!(points.last().unwrap().num_clusters, 1);
    }
}
