//! Numerically careful elementwise and reduction operations.

use crate::tensor::Tensor;

/// Row-wise numerically stable softmax of a `(batch, classes)` matrix.
///
/// # Panics
/// Panics if `logits` is not 2-dimensional.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(
        logits.shape().ndim(),
        2,
        "softmax_rows expects (batch, classes)"
    );
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = vec![0.0f32; b * c];
    for i in 0..b {
        let row = &logits.data()[i * c..(i + 1) * c];
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let orow = &mut out[i * c..(i + 1) * c];
        let mut z = 0.0f32;
        for (o, &x) in orow.iter_mut().zip(row) {
            let e = (x - m).exp();
            *o = e;
            z += e;
        }
        let inv = 1.0 / z;
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
    Tensor::from_vec([b, c], out)
}

/// Row-wise numerically stable log-softmax of a `(batch, classes)` matrix.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(
        logits.shape().ndim(),
        2,
        "log_softmax_rows expects (batch, classes)"
    );
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = vec![0.0f32; b * c];
    for i in 0..b {
        let row = &logits.data()[i * c..(i + 1) * c];
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        for (o, &x) in out[i * c..(i + 1) * c].iter_mut().zip(row) {
            *o = x - lse;
        }
    }
    Tensor::from_vec([b, c], out)
}

/// Index of the maximum element in each row of a `(batch, classes)` matrix.
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    assert_eq!(t.shape().ndim(), 2, "argmax_rows expects a matrix");
    let (b, c) = (t.dims()[0], t.dims()[1]);
    (0..b)
        .map(|i| {
            let row = &t.data()[i * c..(i + 1) * c];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0)
        })
        .collect()
}

/// Mean of each column of a `(rows, cols)` matrix.
pub fn col_mean(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().ndim(), 2, "col_mean expects a matrix");
    let (r, c) = (t.dims()[0], t.dims()[1]);
    let mut out = vec![0.0f32; c];
    for i in 0..r {
        for (o, &x) in out.iter_mut().zip(&t.data()[i * c..(i + 1) * c]) {
            *o += x;
        }
    }
    let inv = 1.0 / r.max(1) as f32;
    for o in &mut out {
        *o *= inv;
    }
    Tensor::from_vec([c], out)
}

/// Clip every element into `[-bound, bound]` in place; returns how many
/// elements were clipped. Used as a gradient safety net.
pub fn clip_in_place(t: &mut Tensor, bound: f32) -> usize {
    let mut clipped = 0;
    for x in t.data_mut() {
        if *x > bound {
            *x = bound;
            clipped += 1;
        } else if *x < -bound {
            *x = -bound;
            clipped += 1;
        }
    }
    clipped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&t);
        for i in 0..2 {
            let sum: f32 = s.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: bigger logit, bigger probability.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec([1, 3], vec![1000.0, 1001.0, 1002.0]);
        let s = softmax_rows(&t);
        assert!(!s.has_non_finite());
        let sum: f32 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec([2, 4], vec![0.5, -1.0, 2.0, 0.0, 3.0, 3.0, 3.0, 3.0]);
        let ls = log_softmax_rows(&t);
        let s = softmax_rows(&t);
        for (a, b) in ls.data().iter().zip(s.data()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_finds_peaks() {
        let t = Tensor::from_vec([3, 3], vec![1., 9., 2., 5., 1., 0., 0., 0., 7.]);
        assert_eq!(argmax_rows(&t), vec![1, 0, 2]);
    }

    #[test]
    fn col_mean_averages_columns() {
        let t = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(col_mean(&t).data(), &[2.0, 3.0]);
    }

    #[test]
    fn clip_counts_and_bounds() {
        let mut t = Tensor::from_vec([4], vec![-10.0, -0.5, 0.5, 10.0]);
        let n = clip_in_place(&mut t, 1.0);
        assert_eq!(n, 2);
        assert_eq!(t.data(), &[-1.0, -0.5, 0.5, 1.0]);
    }
}
