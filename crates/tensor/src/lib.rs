//! # fedclust-tensor
//!
//! A small, dependency-light dense tensor library used as the numerical
//! substrate for the FedClust reproduction. It provides exactly what the
//! neural-network and clustering layers above it need:
//!
//! * row-major `f32` tensors with shape/stride bookkeeping ([`Tensor`]),
//! * cache-blocked, rayon-parallel matrix multiplication ([`matmul`]),
//! * `im2col`/`col2im` lowering for convolutions ([`conv`]),
//! * numerically stable softmax / log-softmax and reductions ([`ops`]),
//! * one-sided Jacobi SVD and principal angles for PACFL ([`linalg`]),
//! * pairwise L2 / cosine distance matrices ([`distance`]),
//! * Xavier/He initialisation and deterministic RNG derivation ([`init`],
//!   [`rng`]).
//!
//! The library is deliberately *not* an autograd engine: backpropagation is
//! implemented layer-by-layer in `fedclust-nn`, which keeps this crate a
//! plain, easily testable array toolkit.

pub mod conv;
pub mod distance;
pub mod init;
pub mod linalg;
pub mod matmul;
pub mod ops;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;
