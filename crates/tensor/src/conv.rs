//! `im2col` / `col2im` lowering for 2-d convolutions.
//!
//! Convolutions in `fedclust-nn` are computed as a single GEMM over an
//! im2col patch matrix. For the forward pass, a `(C_in·KH·KW) × (OH·OW)`
//! matrix is built per image; the backward pass for the input gradient uses
//! the adjoint scatter `col2im`.

use crate::tensor::Tensor;

/// Static description of a 2-d convolution geometry (single image).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dGeom {
    /// Output height after convolution.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k_h) / self.stride + 1
    }

    /// Output width after convolution.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k_w) / self.stride + 1
    }

    /// Rows of the im2col matrix: `C_in * KH * KW`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.k_h * self.k_w
    }

    /// Columns of the im2col matrix: `OH * OW`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Validate that the geometry is realisable (kernel fits in the padded
    /// input and stride is nonzero).
    pub fn validate(&self) -> Result<(), String> {
        if self.stride == 0 {
            return Err("stride must be nonzero".into());
        }
        if self.k_h == 0 || self.k_w == 0 {
            return Err("kernel must be nonzero".into());
        }
        if self.in_h + 2 * self.pad < self.k_h || self.in_w + 2 * self.pad < self.k_w {
            return Err(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.k_h,
                self.k_w,
                self.in_h + 2 * self.pad,
                self.in_w + 2 * self.pad
            ));
        }
        Ok(())
    }
}

/// Lower one image `(C,H,W)` to its im2col matrix `(C·KH·KW, OH·OW)`.
///
/// # Panics
/// Panics if `img` does not have shape `(C,H,W)` matching `geom`.
pub fn im2col(img: &Tensor, geom: &Conv2dGeom) -> Tensor {
    assert_eq!(
        img.dims(),
        &[geom.in_channels, geom.in_h, geom.in_w],
        "im2col input shape mismatch"
    );
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = geom.col_rows();
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = img.data();
    let (h, w) = (geom.in_h, geom.in_w);

    let mut r = 0usize;
    for c in 0..geom.in_channels {
        let chan = &data[c * h * w..(c + 1) * h * w];
        for kh in 0..geom.k_h {
            for kw in 0..geom.k_w {
                let row_out = &mut out[r * cols..(r + 1) * cols];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + kh) as isize - geom.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kw) as isize - geom.pad as isize;
                        row_out[idx] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            chan[iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        idx += 1;
                    }
                }
                r += 1;
            }
        }
    }
    Tensor::from_vec([rows, cols], out)
}

/// Adjoint of [`im2col`]: scatter-add a column matrix back to image layout.
///
/// Given the gradient of the loss with respect to the im2col matrix, this
/// accumulates it into the gradient with respect to the original `(C,H,W)`
/// image. Overlapping patches sum, which is exactly the adjoint of the
/// gather performed by `im2col`.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert_eq!(
        cols.dims(),
        &[geom.col_rows(), oh * ow],
        "col2im input shape mismatch"
    );
    let (h, w) = (geom.in_h, geom.in_w);
    let mut out = vec![0.0f32; geom.in_channels * h * w];
    let data = cols.data();
    let ncols = oh * ow;

    let mut r = 0usize;
    for c in 0..geom.in_channels {
        let chan = &mut out[c * h * w..(c + 1) * h * w];
        for kh in 0..geom.k_h {
            for kw in 0..geom.k_w {
                let row_in = &data[r * ncols..(r + 1) * ncols];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + kh) as isize - geom.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kw) as isize - geom.pad as isize;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            chan[iy as usize * w + ix as usize] += row_in[idx];
                        }
                        idx += 1;
                    }
                }
                r += 1;
            }
        }
    }
    Tensor::from_vec([geom.in_channels, h, w], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, h: usize, w: usize, k: usize, stride: usize, pad: usize) -> Conv2dGeom {
        Conv2dGeom {
            in_channels: c,
            in_h: h,
            in_w: w,
            k_h: k,
            k_w: k,
            stride,
            pad,
        }
    }

    #[test]
    fn output_dims() {
        let g = geom(3, 16, 16, 3, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (14, 14));
        let g = geom(3, 16, 16, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (16, 16));
        let g = geom(1, 8, 8, 2, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        assert!(geom(1, 4, 4, 5, 1, 0).validate().is_err());
        assert!(geom(1, 4, 4, 3, 0, 0).validate().is_err());
        assert!(geom(1, 4, 4, 5, 1, 1).validate().is_ok());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is just a reshape.
        let g = geom(2, 3, 3, 1, 1, 0);
        let img = Tensor::from_vec([2, 3, 3], (0..18).map(|x| x as f32).collect());
        let cols = im2col(&img, &g);
        assert_eq!(cols.dims(), &[2, 9]);
        assert_eq!(cols.data(), img.data());
    }

    #[test]
    fn im2col_known_patch() {
        let g = geom(1, 3, 3, 2, 1, 0);
        let img = Tensor::from_vec([1, 3, 3], (1..=9).map(|x| x as f32).collect());
        let cols = im2col(&img, &g);
        // First output position (0,0) gathers the top-left 2x2 patch down
        // the rows (k-row-major): 1,2,4,5 at column 0.
        assert_eq!(cols.dims(), &[4, 4]);
        let col0: Vec<f32> = (0..4).map(|r| cols.at(&[r, 0])).collect();
        assert_eq!(col0, vec![1.0, 2.0, 4.0, 5.0]);
        let col3: Vec<f32> = (0..4).map(|r| cols.at(&[r, 3])).collect();
        assert_eq!(col3, vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn padding_produces_zeros() {
        let g = geom(1, 2, 2, 3, 1, 1);
        let img = Tensor::ones([1, 2, 2]);
        let cols = im2col(&img, &g);
        // Top-left output gathers a patch whose first row is entirely padding.
        assert_eq!(cols.at(&[0, 0]), 0.0);
        // Centre weights see real pixels.
        assert_eq!(cols.at(&[4, 0]), 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which is what backprop relies on.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        for &(c, h, w, k, s, p) in &[(1, 5, 5, 3, 1, 0), (2, 6, 6, 3, 2, 1), (3, 4, 4, 2, 1, 1)] {
            let g = geom(c, h, w, k, s, p);
            let x = Tensor::from_vec(
                [c, h, w],
                (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
            );
            let rows = g.col_rows();
            let cols_n = g.col_cols();
            let y = Tensor::from_vec(
                [rows, cols_n],
                (0..rows * cols_n).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
            );
            let lhs = im2col(&x, &g).dot(&y);
            let rhs = x.dot(&col2im(&y, &g));
            assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {} vs {}", lhs, rhs);
        }
    }
}
