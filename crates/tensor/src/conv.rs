//! `im2col` / `col2im` lowering for 2-d convolutions.
//!
//! Convolutions in `fedclust-nn` are computed as a single GEMM over an
//! im2col patch matrix. For the forward pass, a `(C_in·KH·KW) × (OH·OW)`
//! matrix is built per image; the backward pass for the input gradient uses
//! the adjoint scatter `col2im`.

use crate::tensor::Tensor;

/// Static description of a 2-d convolution geometry (single image).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dGeom {
    /// Output height after convolution.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k_h) / self.stride + 1
    }

    /// Output width after convolution.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k_w) / self.stride + 1
    }

    /// Rows of the im2col matrix: `C_in * KH * KW`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.k_h * self.k_w
    }

    /// Columns of the im2col matrix: `OH * OW`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Validate that the geometry is realisable (kernel fits in the padded
    /// input and stride is nonzero).
    pub fn validate(&self) -> Result<(), String> {
        if self.stride == 0 {
            return Err("stride must be nonzero".into());
        }
        if self.k_h == 0 || self.k_w == 0 {
            return Err("kernel must be nonzero".into());
        }
        if self.in_h + 2 * self.pad < self.k_h || self.in_w + 2 * self.pad < self.k_w {
            return Err(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.k_h,
                self.k_w,
                self.in_h + 2 * self.pad,
                self.in_w + 2 * self.pad
            ));
        }
        Ok(())
    }
}

/// Lower one image `(C,H,W)` to its im2col matrix `(C·KH·KW, OH·OW)`.
///
/// # Panics
/// Panics if `img` does not have shape `(C,H,W)` matching `geom`.
pub fn im2col(img: &Tensor, geom: &Conv2dGeom) -> Tensor {
    assert_eq!(
        img.dims(),
        &[geom.in_channels, geom.in_h, geom.in_w],
        "im2col input shape mismatch"
    );
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = geom.col_rows();
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = img.data();
    let (h, w) = (geom.in_h, geom.in_w);

    let mut r = 0usize;
    for c in 0..geom.in_channels {
        let chan = &data[c * h * w..(c + 1) * h * w];
        for kh in 0..geom.k_h {
            for kw in 0..geom.k_w {
                let row_out = &mut out[r * cols..(r + 1) * cols];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + kh) as isize - geom.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kw) as isize - geom.pad as isize;
                        row_out[idx] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            chan[iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        idx += 1;
                    }
                }
                r += 1;
            }
        }
    }
    Tensor::from_vec([rows, cols], out)
}

/// Adjoint of [`im2col`]: scatter-add a column matrix back to image layout.
///
/// Given the gradient of the loss with respect to the im2col matrix, this
/// accumulates it into the gradient with respect to the original `(C,H,W)`
/// image. Overlapping patches sum, which is exactly the adjoint of the
/// gather performed by `im2col`.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert_eq!(
        cols.dims(),
        &[geom.col_rows(), oh * ow],
        "col2im input shape mismatch"
    );
    let (h, w) = (geom.in_h, geom.in_w);
    let mut out = vec![0.0f32; geom.in_channels * h * w];
    let data = cols.data();
    let ncols = oh * ow;

    let mut r = 0usize;
    for c in 0..geom.in_channels {
        let chan = &mut out[c * h * w..(c + 1) * h * w];
        for kh in 0..geom.k_h {
            for kw in 0..geom.k_w {
                let row_in = &data[r * ncols..(r + 1) * ncols];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + kh) as isize - geom.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kw) as isize - geom.pad as isize;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            chan[iy as usize * w + ix as usize] += row_in[idx];
                        }
                        idx += 1;
                    }
                }
                r += 1;
            }
        }
    }
    Tensor::from_vec([geom.in_channels, h, w], out)
}

/// Lower a whole batch `(B,C,H,W)` into one im2col matrix
/// `(C·KH·KW, B·OH·OW)`, writing into a caller-provided workspace.
///
/// Column `b·OH·OW + oy·OW + ox` holds the patch for image `b` at output
/// position `(oy, ox)`, so a single GEMM against the `(C_out, C·KH·KW)`
/// weight matrix convolves the entire batch. Every element of `out` is
/// written (out-of-bounds taps become zeros), so the workspace can be
/// reused across calls without clearing.
///
/// # Panics
/// Panics if `batch.len() != b * C·H·W` or `out.len() != col_rows · b·OH·OW`.
pub fn im2col_batch_into(batch: &[f32], b: usize, geom: &Conv2dGeom, out: &mut [f32]) {
    use rayon::prelude::*;

    let (h, w) = (geom.in_h, geom.in_w);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let chw = geom.in_channels * h * w;
    let ocols = oh * ow;
    let n = b * ocols;
    assert_eq!(batch.len(), b * chw, "im2col_batch input length mismatch");
    assert_eq!(
        out.len(),
        geom.col_rows() * n,
        "im2col_batch output length mismatch"
    );
    if n == 0 {
        return;
    }
    let (stride, pad) = (geom.stride, geom.pad);
    let khw = geom.k_h * geom.k_w;

    // Rows are independent gathers; each row reads one (channel, kh, kw) tap
    // across every image and output position.
    out.par_chunks_mut(n).enumerate().for_each(|(r, row)| {
        let c = r / khw;
        let kh = (r / geom.k_w) % geom.k_h;
        let kw = r % geom.k_w;
        // Output columns whose input x-coordinate is in bounds for this tap:
        // 0 <= ox*stride + kw - pad < w.
        let ox_lo = if pad > kw {
            (pad - kw).div_ceil(stride).min(ow)
        } else {
            0
        };
        let ox_hi = if w + pad > kw {
            ((w + pad - kw - 1) / stride + 1).min(ow)
        } else {
            0
        };
        for bi in 0..b {
            let chan = &batch[bi * chw + c * h * w..bi * chw + (c + 1) * h * w];
            for oy in 0..oh {
                let dst = &mut row[bi * ocols + oy * ow..bi * ocols + oy * ow + ow];
                let iy = (oy * stride + kh) as isize - pad as isize;
                if iy < 0 || iy >= h as isize || ox_lo >= ox_hi {
                    dst.fill(0.0);
                    continue;
                }
                let src_row = &chan[iy as usize * w..(iy as usize + 1) * w];
                dst[..ox_lo].fill(0.0);
                dst[ox_hi..].fill(0.0);
                if stride == 1 {
                    let ix0 = ox_lo + kw - pad;
                    dst[ox_lo..ox_hi].copy_from_slice(&src_row[ix0..ix0 + (ox_hi - ox_lo)]);
                } else {
                    for (ox, d) in dst[ox_lo..ox_hi].iter_mut().enumerate() {
                        *d = src_row[(ox_lo + ox) * stride + kw - pad];
                    }
                }
            }
        }
    });
}

/// Adjoint of [`im2col_batch_into`]: scatter-add a `(C·KH·KW, B·OH·OW)`
/// column-gradient matrix back into batch image layout `(B,C,H,W)`.
///
/// Accumulates into `out` (overlapping patches sum); the caller zeroes the
/// buffer first when a fresh gradient is wanted.
///
/// # Panics
/// Panics if `cols.len() != col_rows · b·OH·OW` or `out.len() != b · C·H·W`.
pub fn col2im_batch_into(cols: &[f32], b: usize, geom: &Conv2dGeom, out: &mut [f32]) {
    use rayon::prelude::*;

    let (h, w) = (geom.in_h, geom.in_w);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let chw = geom.in_channels * h * w;
    let ocols = oh * ow;
    let n = b * ocols;
    assert_eq!(
        cols.len(),
        geom.col_rows() * n,
        "col2im_batch input length mismatch"
    );
    assert_eq!(out.len(), b * chw, "col2im_batch output length mismatch");
    if n == 0 {
        return;
    }
    let (stride, pad) = (geom.stride, geom.pad);
    let khw = geom.k_h * geom.k_w;

    // Images scatter into disjoint output chunks, so parallelise over the
    // batch; within an image, walk the rows like the per-image col2im.
    out.par_chunks_mut(chw).enumerate().for_each(|(bi, img)| {
        for r in 0..geom.col_rows() {
            let c = r / khw;
            let kh = (r / geom.k_w) % geom.k_h;
            let kw = r % geom.k_w;
            let ox_lo = if pad > kw {
                (pad - kw).div_ceil(stride).min(ow)
            } else {
                0
            };
            let ox_hi = if w + pad > kw {
                ((w + pad - kw - 1) / stride + 1).min(ow)
            } else {
                0
            };
            let chan = &mut img[c * h * w..(c + 1) * h * w];
            let row = &cols[r * n + bi * ocols..r * n + (bi + 1) * ocols];
            for oy in 0..oh {
                let iy = (oy * stride + kh) as isize - pad as isize;
                if iy < 0 || iy >= h as isize || ox_lo >= ox_hi {
                    continue;
                }
                let dst_row = &mut chan[iy as usize * w..(iy as usize + 1) * w];
                let src = &row[oy * ow..(oy + 1) * ow];
                if stride == 1 {
                    let ix0 = ox_lo + kw - pad;
                    for (d, &s) in dst_row[ix0..ix0 + (ox_hi - ox_lo)]
                        .iter_mut()
                        .zip(&src[ox_lo..ox_hi])
                    {
                        *d += s;
                    }
                } else {
                    for (ox, &s) in src[ox_lo..ox_hi].iter().enumerate() {
                        dst_row[(ox_lo + ox) * stride + kw - pad] += s;
                    }
                }
            }
        }
    });
}

/// Lower a `(B,C,H,W)` batch tensor to its `(C·KH·KW, B·OH·OW)` im2col
/// matrix. Allocating wrapper over [`im2col_batch_into`].
///
/// # Panics
/// Panics if `batch` is not 4-d with trailing dims matching `geom`.
pub fn im2col_batch(batch: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let dims = batch.dims();
    assert_eq!(dims.len(), 4, "im2col_batch expects a (B,C,H,W) tensor");
    assert_eq!(
        &dims[1..],
        &[geom.in_channels, geom.in_h, geom.in_w],
        "im2col_batch image shape mismatch"
    );
    let b = dims[0];
    let mut out = vec![0.0f32; geom.col_rows() * b * geom.col_cols()];
    im2col_batch_into(batch.data(), b, geom, &mut out);
    Tensor::from_vec([geom.col_rows(), b * geom.col_cols()], out)
}

/// Scatter a batched column matrix back to a `(B,C,H,W)` tensor. Allocating
/// wrapper over [`col2im_batch_into`].
pub fn col2im_batch(cols: &Tensor, b: usize, geom: &Conv2dGeom) -> Tensor {
    assert_eq!(
        cols.dims(),
        &[geom.col_rows(), b * geom.col_cols()],
        "col2im_batch input shape mismatch"
    );
    let mut out = vec![0.0f32; b * geom.in_channels * geom.in_h * geom.in_w];
    col2im_batch_into(cols.data(), b, geom, &mut out);
    Tensor::from_vec([b, geom.in_channels, geom.in_h, geom.in_w], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, h: usize, w: usize, k: usize, stride: usize, pad: usize) -> Conv2dGeom {
        Conv2dGeom {
            in_channels: c,
            in_h: h,
            in_w: w,
            k_h: k,
            k_w: k,
            stride,
            pad,
        }
    }

    #[test]
    fn output_dims() {
        let g = geom(3, 16, 16, 3, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (14, 14));
        let g = geom(3, 16, 16, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (16, 16));
        let g = geom(1, 8, 8, 2, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        assert!(geom(1, 4, 4, 5, 1, 0).validate().is_err());
        assert!(geom(1, 4, 4, 3, 0, 0).validate().is_err());
        assert!(geom(1, 4, 4, 5, 1, 1).validate().is_ok());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is just a reshape.
        let g = geom(2, 3, 3, 1, 1, 0);
        let img = Tensor::from_vec([2, 3, 3], (0..18).map(|x| x as f32).collect());
        let cols = im2col(&img, &g);
        assert_eq!(cols.dims(), &[2, 9]);
        assert_eq!(cols.data(), img.data());
    }

    #[test]
    fn im2col_known_patch() {
        let g = geom(1, 3, 3, 2, 1, 0);
        let img = Tensor::from_vec([1, 3, 3], (1..=9).map(|x| x as f32).collect());
        let cols = im2col(&img, &g);
        // First output position (0,0) gathers the top-left 2x2 patch down
        // the rows (k-row-major): 1,2,4,5 at column 0.
        assert_eq!(cols.dims(), &[4, 4]);
        let col0: Vec<f32> = (0..4).map(|r| cols.at(&[r, 0])).collect();
        assert_eq!(col0, vec![1.0, 2.0, 4.0, 5.0]);
        let col3: Vec<f32> = (0..4).map(|r| cols.at(&[r, 3])).collect();
        assert_eq!(col3, vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn padding_produces_zeros() {
        let g = geom(1, 2, 2, 3, 1, 1);
        let img = Tensor::ones([1, 2, 2]);
        let cols = im2col(&img, &g);
        // Top-left output gathers a patch whose first row is entirely padding.
        assert_eq!(cols.at(&[0, 0]), 0.0);
        // Centre weights see real pixels.
        assert_eq!(cols.at(&[4, 0]), 1.0);
    }

    /// Shapes exercising stride 1 and 2, pad 0 and 1, odd sizes, and a
    /// kernel wider than the unpadded input.
    const BATCH_SHAPES: &[(usize, usize, usize, usize, usize, usize, usize)] = &[
        // (b, c, h, w, k, stride, pad)
        (1, 1, 5, 5, 3, 1, 0),
        (3, 2, 6, 6, 3, 2, 1),
        (2, 3, 4, 4, 2, 1, 1),
        (4, 1, 7, 5, 3, 2, 0),
        (2, 2, 3, 3, 3, 1, 1),
        (1, 1, 2, 2, 3, 1, 1),
    ];

    fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..n).map(|_| rng.gen_range(-1.0..1.0f32)).collect())
    }

    #[test]
    fn batched_im2col_matches_per_image() {
        for (i, &(b, c, h, w, k, s, p)) in BATCH_SHAPES.iter().enumerate() {
            let g = geom(c, h, w, k, s, p);
            let batch = random_tensor(&[b, c, h, w], 100 + i as u64);
            let cols = im2col_batch(&batch, &g);
            let ocols = g.col_cols();
            assert_eq!(cols.dims(), &[g.col_rows(), b * ocols]);
            for bi in 0..b {
                let chw = c * h * w;
                let img =
                    Tensor::from_vec([c, h, w], batch.data()[bi * chw..(bi + 1) * chw].to_vec());
                let single = im2col(&img, &g);
                for r in 0..g.col_rows() {
                    for j in 0..ocols {
                        assert_eq!(
                            cols.at(&[r, bi * ocols + j]),
                            single.at(&[r, j]),
                            "shape {:?} image {} row {} col {}",
                            (b, c, h, w, k, s, p),
                            bi,
                            r,
                            j
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_col2im_matches_per_image() {
        for (i, &(b, c, h, w, k, s, p)) in BATCH_SHAPES.iter().enumerate() {
            let g = geom(c, h, w, k, s, p);
            let ocols = g.col_cols();
            let cols = random_tensor(&[g.col_rows(), b * ocols], 200 + i as u64);
            let imgs = col2im_batch(&cols, b, &g);
            assert_eq!(imgs.dims(), &[b, c, h, w]);
            for bi in 0..b {
                let mut sub = vec![0.0f32; g.col_rows() * ocols];
                for r in 0..g.col_rows() {
                    for j in 0..ocols {
                        sub[r * ocols + j] = cols.at(&[r, bi * ocols + j]);
                    }
                }
                let single = col2im(&Tensor::from_vec([g.col_rows(), ocols], sub), &g);
                let chw = c * h * w;
                for (x, (&got, &want)) in imgs.data()[bi * chw..(bi + 1) * chw]
                    .iter()
                    .zip(single.data())
                    .enumerate()
                {
                    assert!(
                        (got - want).abs() < 1e-6,
                        "shape {:?} image {} elem {}: {} vs {}",
                        (b, c, h, w, k, s, p),
                        bi,
                        x,
                        got,
                        want
                    );
                }
            }
        }
    }

    #[test]
    fn batched_workspace_is_fully_overwritten() {
        // Reusing a dirty workspace must not leak stale values into the
        // zero-padding positions.
        let g = geom(1, 2, 2, 3, 1, 1);
        let batch = Tensor::ones([2, 1, 2, 2]);
        let n = g.col_rows() * 2 * g.col_cols();
        let mut ws = vec![7.0f32; n];
        im2col_batch_into(batch.data(), 2, &g, &mut ws);
        let clean = im2col_batch(&batch, &g);
        assert_eq!(&ws, clean.data());
    }

    #[test]
    fn batched_col2im_is_adjoint_of_batched_im2col() {
        for (i, &(b, c, h, w, k, s, p)) in BATCH_SHAPES.iter().enumerate() {
            let g = geom(c, h, w, k, s, p);
            let x = random_tensor(&[b, c, h, w], 300 + i as u64);
            let y = random_tensor(&[g.col_rows(), b * g.col_cols()], 400 + i as u64);
            let lhs: f32 = im2col_batch(&x, &g)
                .data()
                .iter()
                .zip(y.data())
                .map(|(&a, &b)| a * b)
                .sum();
            let rhs: f32 = x
                .data()
                .iter()
                .zip(col2im_batch(&y, b, &g).data())
                .map(|(&a, &b)| a * b)
                .sum();
            assert!(
                (lhs - rhs).abs() < 1e-3,
                "adjoint mismatch: {} vs {}",
                lhs,
                rhs
            );
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which is what backprop relies on.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        for &(c, h, w, k, s, p) in &[(1, 5, 5, 3, 1, 0), (2, 6, 6, 3, 2, 1), (3, 4, 4, 2, 1, 1)] {
            let g = geom(c, h, w, k, s, p);
            let x = Tensor::from_vec(
                [c, h, w],
                (0..c * h * w)
                    .map(|_| rng.gen_range(-1.0..1.0f32))
                    .collect(),
            );
            let rows = g.col_rows();
            let cols_n = g.col_cols();
            let y = Tensor::from_vec(
                [rows, cols_n],
                (0..rows * cols_n)
                    .map(|_| rng.gen_range(-1.0..1.0f32))
                    .collect(),
            );
            let lhs = im2col(&x, &g).dot(&y);
            let rhs = x.dot(&col2im(&y, &g));
            assert!(
                (lhs - rhs).abs() < 1e-3,
                "adjoint mismatch: {} vs {}",
                lhs,
                rhs
            );
        }
    }
}
