//! Small-matrix linear algebra: one-sided Jacobi SVD and principal angles.
//!
//! PACFL (one of the paper's strongest baselines) represents each client's
//! per-class data by the top-`p` left singular vectors of the class data
//! matrix and measures client similarity by principal angles between those
//! subspaces. The matrices involved are small (features × samples of one
//! class on one client), so a textbook one-sided Jacobi SVD is both simple
//! and plenty fast.

use crate::matmul::matmul;
use crate::tensor::Tensor;

/// Result of a thin singular value decomposition `A = U Σ Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `(m, r)` column-orthonormal.
    pub u: Tensor,
    /// Singular values in non-increasing order, length `r`.
    pub sigma: Vec<f32>,
    /// Right singular vectors, `(n, r)` column-orthonormal.
    pub v: Tensor,
}

/// Compute the thin SVD of `a` (`m×n`) by one-sided Jacobi rotations on the
/// columns of `A` (if `m >= n`) or of `Aᵀ` otherwise.
///
/// Accuracy target is ~1e-5 relative, which is far more than the clustering
/// application needs. Complexity is `O(m n² · sweeps)`.
pub fn svd(a: &Tensor) -> Svd {
    assert_eq!(a.shape().ndim(), 2, "svd expects a matrix");
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if m >= n {
        svd_tall(a)
    } else {
        // A = U Σ Vᵀ  ⇔  Aᵀ = V Σ Uᵀ
        let t = svd_tall(&a.transpose2());
        Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        }
    }
}

/// One-sided Jacobi on a tall (or square) matrix: orthogonalise the columns
/// of a working copy `W` (initially `A`) by plane rotations accumulated in
/// `V`; then `σ_j = ‖w_j‖` and `u_j = w_j/σ_j`.
#[allow(clippy::needless_range_loop)] // index walks two rows in lockstep
fn svd_tall(a: &Tensor) -> Svd {
    let (m, n) = (a.dims()[0], a.dims()[1]);
    // Column-major working copy for cache-friendly column ops.
    let mut w: Vec<Vec<f64>> = (0..n)
        .map(|j| (0..m).map(|i| a.at(&[i, j]) as f64).collect())
        .collect();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut col = vec![0.0f64; n];
            col[j] = 1.0;
            col
        })
        .collect();

    let eps = 1e-12f64;
    let max_sweeps = 40;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    app += w[p][i] * w[p][i];
                    aqq += w[q][i] * w[q][i];
                    apq += w[p][i] * w[q][i];
                }
                off += apq * apq;
                if apq.abs() <= eps * (app * aqq).sqrt().max(eps) {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) entry of WᵀW.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let wp = w[p][i];
                    let wq = w[q][i];
                    w[p][i] = c * wp - s * wq;
                    w[q][i] = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[p][i];
                    let vq = v[q][i];
                    v[p][i] = c * vp - s * vq;
                    v[q][i] = s * vp + c * vq;
                }
            }
        }
        if off.sqrt() < 1e-14 {
            break;
        }
    }

    // Extract singular values and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = w
        .iter()
        .map(|col| col.iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&a, &b| {
        norms[b]
            .partial_cmp(&norms[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut u = vec![0.0f32; m * n];
    let mut vv = vec![0.0f32; n * n];
    let mut sigma = Vec::with_capacity(n);
    for (jj, &j) in order.iter().enumerate() {
        let s = norms[j];
        sigma.push(s as f32);
        let inv = if s > 1e-30 { 1.0 / s } else { 0.0 };
        for i in 0..m {
            u[i * n + jj] = (w[j][i] * inv) as f32;
        }
        for i in 0..n {
            vv[i * n + jj] = v[j][i] as f32;
        }
    }
    Svd {
        u: Tensor::from_vec([m, n], u),
        sigma,
        v: Tensor::from_vec([n, n], vv),
    }
}

/// Top-`p` left singular vectors of `a` as a `(m, p)` column-orthonormal
/// matrix. `p` is clamped to the number of columns of `a`.
pub fn truncated_left_singular_vectors(a: &Tensor, p: usize) -> Tensor {
    let s = svd(a);
    let (m, r) = (s.u.dims()[0], s.u.dims()[1]);
    let p = p.min(r);
    let mut out = vec![0.0f32; m * p];
    for i in 0..m {
        for j in 0..p {
            out[i * p + j] = s.u.at(&[i, j]);
        }
    }
    Tensor::from_vec([m, p], out)
}

/// Principal angles (radians, ascending) between the column spaces of two
/// column-orthonormal matrices `u1` (`m×p`) and `u2` (`m×q`).
///
/// The cosines of the principal angles are the singular values of `u1ᵀ u2`.
pub fn principal_angles(u1: &Tensor, u2: &Tensor) -> Vec<f32> {
    assert_eq!(u1.dims()[0], u2.dims()[0], "subspace ambient dims differ");
    let m = matmul(&u1.transpose2(), u2);
    let s = svd(&m);
    let mut angles: Vec<f32> = s.sigma.iter().map(|&c| c.clamp(-1.0, 1.0).acos()).collect();
    angles.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    angles
}

/// The PACFL proximity between two subspaces: the sum of principal angles
/// in degrees (smaller = more similar data distributions).
pub fn subspace_distance_deg(u1: &Tensor, u2: &Tensor) -> f32 {
    principal_angles(u1, u2)
        .iter()
        .map(|a| a.to_degrees())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random(m: usize, n: usize, seed: u64) -> Tensor {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        Tensor::from_vec(
            [m, n],
            (0..m * n).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
        )
    }

    fn reconstruct(s: &Svd) -> Tensor {
        let (m, r) = (s.u.dims()[0], s.u.dims()[1]);
        let mut us = Tensor::zeros([m, r]);
        for i in 0..m {
            for j in 0..r {
                *us.at_mut(&[i, j]) = s.u.at(&[i, j]) * s.sigma[j];
            }
        }
        matmul(&us, &s.v.transpose2())
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{} vs {}", x, y);
        }
    }

    #[test]
    fn svd_reconstructs_tall_matrix() {
        let a = random(8, 4, 3);
        let s = svd(&a);
        assert_close(&reconstruct(&s), &a, 1e-4);
    }

    #[test]
    fn svd_reconstructs_wide_matrix() {
        let a = random(3, 7, 4);
        let s = svd(&a);
        assert_close(&reconstruct(&s), &a, 1e-4);
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = random(6, 6, 5);
        let s = svd(&a);
        for w in s.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-6);
        }
        assert!(s.sigma.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn u_columns_are_orthonormal() {
        let a = random(10, 4, 6);
        let s = svd(&a);
        let g = matmul(&s.u.transpose2(), &s.u);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((g.at(&[i, j]) - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn svd_of_diagonal_matrix() {
        let mut a = Tensor::zeros([3, 3]);
        *a.at_mut(&[0, 0]) = 3.0;
        *a.at_mut(&[1, 1]) = 2.0;
        *a.at_mut(&[2, 2]) = 1.0;
        let s = svd(&a);
        assert!((s.sigma[0] - 3.0).abs() < 1e-5);
        assert!((s.sigma[1] - 2.0).abs() < 1e-5);
        assert!((s.sigma[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn principal_angles_identical_subspaces_are_zero() {
        let a = random(8, 3, 7);
        let u = truncated_left_singular_vectors(&a, 3);
        let angles = principal_angles(&u, &u);
        assert!(angles.iter().all(|&a| a < 1e-3));
    }

    #[test]
    fn principal_angles_orthogonal_subspaces_are_right_angles() {
        // span{e0} vs span{e1} in R^4.
        let mut u1 = Tensor::zeros([4, 1]);
        *u1.at_mut(&[0, 0]) = 1.0;
        let mut u2 = Tensor::zeros([4, 1]);
        *u2.at_mut(&[1, 0]) = 1.0;
        let angles = principal_angles(&u1, &u2);
        assert!((angles[0] - std::f32::consts::FRAC_PI_2).abs() < 1e-4);
        assert!((subspace_distance_deg(&u1, &u2) - 90.0).abs() < 0.1);
    }

    #[test]
    fn truncation_keeps_dominant_direction() {
        // Rank-1 matrix: the single retained vector must span its column space.
        let mut a = Tensor::zeros([5, 3]);
        for i in 0..5 {
            for j in 0..3 {
                *a.at_mut(&[i, j]) = (i as f32 + 1.0) * (j as f32 + 1.0);
            }
        }
        let u = truncated_left_singular_vectors(&a, 1);
        assert_eq!(u.dims(), &[5, 1]);
        // Column should be proportional to (1,2,3,4,5)/norm.
        let ratio = u.at(&[1, 0]) / u.at(&[0, 0]);
        assert!((ratio - 2.0).abs() < 1e-3);
    }
}
