//! Packed, register-blocked, rayon-parallel matrix multiplication.
//!
//! All three layout variants (`NN`, `TN`, `NT`) funnel into one strided
//! driver: the left operand is packed into `MR`-row strips and the right
//! operand into `NR`-column panels (both k-major, zero-padded at the edges),
//! and a fixed-size `MR×NR` register-tile micro-kernel accumulates the
//! product with a fully unrolled inner loop. Packing makes the kernel's
//! memory traffic unit-stride regardless of the logical transpose, so the
//! transposed variants cost the same as the plain one and there is no
//! per-element zero-skip branch on the hot path.
//!
//! Around the register tiling sits `KC×NC` cache blocking: one packed slab
//! of `B` at a time stays L2-resident while every `A` strip streams over it,
//! so batched-convolution-sized right-hand sides (thousands of columns) run
//! at the same per-element cost as cache-sized ones.
//!
//! Parallelism is across `MC`-row blocks of the output: each block packs its
//! own strip of `A` (into a thread-local scratch buffer, so steady-state
//! training performs no allocations here) and walks the shared packed `B`.
//!
//! The slice-level entry points [`gemm_nn`], [`gemm_tn`] and [`gemm_nt`]
//! *accumulate* into `out` (`C += A·B`), which lets callers fold gradient
//! accumulation into the GEMM itself; the [`matmul`]/[`matmul_tn`]/
//! [`matmul_nt`] tensor wrappers start from a zeroed output and so compute
//! the plain product.

use crate::tensor::Tensor;
use rayon::prelude::*;
use std::cell::RefCell;

/// Micro-kernel tile rows: each kernel invocation produces `MR` output rows.
const MR: usize = 4;
/// Micro-kernel tile columns: two 8-wide AVX vectors per accumulator row,
/// giving `MR·NR/8 = 8` independent FMA chains — enough to hide FMA latency
/// on one core.
const NR: usize = 16;
/// Rows of `C` per parallel task; a block of packed `A` (`MC×KC`) plus one
/// packed `B` panel stays comfortably in L2 at this workload's sizes.
const MC: usize = 64;
/// k-extent of one cache block: a `KC×NC` packed slab of `B` must stay
/// L2-resident while every `A` strip streams over it.
const KC: usize = 256;
/// n-extent of one cache block (`KC·NC·4 B = 512 KiB` packed `B`). Without
/// this bound, a batched-conv-sized `B` (hundreds of rows × thousands of
/// columns) is packed whole and every strip pass misses cache.
const NC: usize = 512;

/// Outputs smaller than this (by element count) are multiplied on the
/// calling thread: fork overhead would dominate.
const PAR_THRESHOLD: usize = 64 * 64;

thread_local! {
    /// Per-thread scratch for packed `A` blocks (`MC×k`, k-major strips).
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Calling-thread scratch for the packed `B` panel matrix.
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C = A (m×k) * B (k×n)`.
///
/// # Panics
/// Panics if the operands are not 2-d or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a);
    let (k2, n) = mat_dims(b);
    assert_eq!(
        k, k2,
        "matmul inner dimension mismatch: {}x{} * {}x{}",
        m, k, k2, n
    );
    let mut out = vec![0.0f32; m * n];
    gemm_nn(m, k, n, a.data(), b.data(), &mut out);
    Tensor::from_vec([m, n], out)
}

/// `C = A^T * B` where `a` is stored `k×m`. Used by conv/dense backward
/// passes without materialising the transpose.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = mat_dims(a);
    let (k2, n) = mat_dims(b);
    assert_eq!(k, k2, "matmul_tn inner dimension mismatch");
    let mut out = vec![0.0f32; m * n];
    gemm_tn(m, k, n, a.data(), b.data(), &mut out);
    Tensor::from_vec([m, n], out)
}

/// `C = A (m×k) * B^T` where `b` is stored `n×k`. Used by conv/dense
/// backward passes without materialising the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a);
    let (n, k2) = mat_dims(b);
    assert_eq!(k, k2, "matmul_nt inner dimension mismatch");
    let mut out = vec![0.0f32; m * n];
    gemm_nt(m, k, n, a.data(), b.data(), &mut out);
    Tensor::from_vec([m, n], out)
}

/// `C += A (m×k, row-major) * B (k×n, row-major)` on raw slices.
///
/// # Panics
/// Panics if a slice is shorter than its dimensions imply.
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(
        a.len() >= m * k && b.len() >= k * n && out.len() >= m * n,
        "gemm_nn slice too short"
    );
    gemm_strided(m, k, n, a, k, 1, b, n, 1, out);
}

/// `C += A^T * B` where `a` is stored `k×m` row-major (so logical `A` is
/// `m×k`) and `b` is `k×n` row-major.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(
        a.len() >= k * m && b.len() >= k * n && out.len() >= m * n,
        "gemm_tn slice too short"
    );
    gemm_strided(m, k, n, a, 1, m, b, n, 1, out);
}

/// `C += A * B^T` where `a` is `m×k` row-major and `b` is stored `n×k`
/// row-major (so logical `B` is `k×n`).
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(
        a.len() >= m * k && b.len() >= n * k && out.len() >= m * n,
        "gemm_nt slice too short"
    );
    gemm_strided(m, k, n, a, k, 1, b, 1, k, out);
}

/// Matrix–vector product `y = A (m×k) * x (k)`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a);
    assert_eq!(x.numel(), k, "matvec dimension mismatch");
    let ad = a.data();
    let xd = x.data();
    let mut y = vec![0.0f32; m];
    for (i, yi) in y.iter_mut().enumerate() {
        let row = &ad[i * k..(i + 1) * k];
        *yi = row.iter().zip(xd).map(|(&a, &b)| a * b).sum();
    }
    Tensor::from_vec([m], y)
}

fn mat_dims(t: &Tensor) -> (usize, usize) {
    assert_eq!(
        t.shape().ndim(),
        2,
        "expected a 2-d tensor, got {}",
        t.shape()
    );
    (t.dims()[0], t.dims()[1])
}

/// The register-tile micro-kernel: multiply one packed `MR`-row strip of `A`
/// against one packed `NR`-column panel of `B` over the full `k` extent,
/// returning the `MR×NR` accumulator tile.
///
/// `ap` holds `k` groups of `MR` values (one per output row); `bp` holds `k`
/// groups of `NR` values (one per output column). Fixed `MR`/`NR` let the
/// compiler keep the whole tile in registers and unroll/vectorise the body;
/// each `acc[i][j]` is an independent FMA chain, so vectorisation needs no
/// float reassociation.
#[inline(always)]
fn microkernel_body<const FMA: bool>(k: usize, ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (a_strip, b_panel) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(k) {
        for i in 0..MR {
            let ai = a_strip[i];
            for j in 0..NR {
                acc[i][j] = if FMA {
                    ai.mul_add(b_panel[j], acc[i][j])
                } else {
                    acc[i][j] + ai * b_panel[j]
                };
            }
        }
    }
    acc
}

/// The same body compiled with AVX2+FMA codegen: `mul_add` lowers to a real
/// `vfmadd` and the `NR`-wide rows to YMM lanes. rustc's baseline x86-64
/// target is SSE2-only, so without this instantiation the kernel runs at a
/// quarter of the machine's width.
// SAFETY: `unsafe` here comes solely from `#[target_feature]` — callers must
// guarantee the CPU supports AVX2 and FMA (checked at the single dispatch
// site below via `is_x86_feature_detected!`), or the emitted VEX/FMA
// instructions fault with SIGILL. The body itself is safe Rust: every read
// of `ap`/`bp` goes through `chunks_exact(MR)`/`chunks_exact(NR)` bounded by
// `.take(k)`, so packed buffers shorter than `k*MR`/`k*NR` truncate the
// accumulation rather than read out of bounds. The packers
// (`pack_a_strip`/`pack_b_panel`) always fill exactly `kc*MR`/`kc*NR`
// elements, zero-padding the ragged edges, so in-tree callers satisfy the
// length invariant by construction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2(k: usize, ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    microkernel_body::<true>(k, ap, bp)
}

#[inline(always)]
fn microkernel(k: usize, ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    #[cfg(target_arch = "x86_64")]
    {
        // The detection macro caches its answer, so this is an atomic load
        // and a predictable branch per tile.
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: `is_x86_feature_detected!` verified AVX2 and FMA
            // support immediately above, which is `microkernel_avx2`'s only
            // safety precondition (its slice reads are bounds-checked; see
            // the SAFETY comment on its definition).
            return unsafe { microkernel_avx2(k, ap, bp) };
        }
    }
    microkernel_body::<false>(k, ap, bp)
}

/// Pack `B`'s `[p0,p0+kc)×[j0,j0+w)` slab (arbitrary strides) into a
/// k-major `NR`-column panel, zero-padding columns past `w`.
#[allow(clippy::too_many_arguments)]
fn pack_b_panel(
    b: &[f32],
    brs: usize,
    bcs: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    w: usize,
    panel: &mut [f32],
) {
    for p in 0..kc {
        let dst = &mut panel[p * NR..(p + 1) * NR];
        let base = (p0 + p) * brs + j0 * bcs;
        for (jj, d) in dst.iter_mut().enumerate() {
            *d = if jj < w { b[base + jj * bcs] } else { 0.0 };
        }
    }
}

/// Pack `A`'s `[i0,i0+h)×[p0,p0+kc)` slab (arbitrary strides) into a
/// k-major `MR`-row strip, zero-padding rows past `h`.
#[allow(clippy::too_many_arguments)]
fn pack_a_strip(
    a: &[f32],
    ars: usize,
    acs: usize,
    p0: usize,
    kc: usize,
    i0: usize,
    h: usize,
    strip: &mut [f32],
) {
    for p in 0..kc {
        let dst = &mut strip[p * MR..(p + 1) * MR];
        let base = i0 * ars + (p0 + p) * acs;
        for (ii, d) in dst.iter_mut().enumerate() {
            *d = if ii < h { a[base + ii * ars] } else { 0.0 };
        }
    }
}

/// The shared driver: `C += op(A) * op(B)` for arbitrary row/column strides
/// of the logical `m×k` / `k×n` operands. `out` is `m×n` row-major.
#[allow(clippy::too_many_arguments)]
fn gemm_strided(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    ars: usize,
    acs: usize,
    b: &[f32],
    brs: usize,
    bcs: usize,
    out: &mut [f32],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let par = m * n >= PAR_THRESHOLD && m > MC;
    // Take the scratch buffers out of their cells for the duration of the
    // call (instead of holding a borrow) so re-entrant GEMMs on the same
    // thread — possible under rayon work-stealing — fall back to a fresh
    // allocation rather than a RefCell panic.
    let mut pb = PACK_B.with(|c| std::mem::take(&mut *c.borrow_mut()));

    // Cache blocking: one `KC×NC` slab of `B` is packed at a time and stays
    // hot while every `A` strip streams over it; the accumulating output
    // (`C +=`) makes looping the k blocks outside the kernel sound.
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let n_panels = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pb.clear();
            pb.resize(n_panels * kc * NR, 0.0);
            for (jp, panel) in pb.chunks_mut(kc * NR).enumerate() {
                let j0 = jc + jp * NR;
                pack_b_panel(b, brs, bcs, pc, kc, j0, NR.min(jc + nc - j0), panel);
            }
            let bp: &[f32] = &pb;

            let run_block = |row0: usize, chunk: &mut [f32]| {
                let rows = chunk.len() / n;
                let mut pa = PACK_A.with(|c| std::mem::take(&mut *c.borrow_mut()));
                let strips = rows.div_ceil(MR);
                pa.clear();
                pa.resize(strips * kc * MR, 0.0);
                for (ip, strip) in pa.chunks_mut(kc * MR).enumerate() {
                    let i0 = ip * MR;
                    pack_a_strip(a, ars, acs, pc, kc, row0 + i0, MR.min(rows - i0), strip);
                }
                for (ip, strip) in pa.chunks(kc * MR).enumerate() {
                    let i0 = ip * MR;
                    let h = MR.min(rows - i0);
                    for (jp, panel) in bp.chunks(kc * NR).enumerate() {
                        let j0 = jc + jp * NR;
                        let w = NR.min(jc + nc - j0);
                        let acc = microkernel(kc, strip, panel);
                        for (ii, acc_row) in acc.iter().enumerate().take(h) {
                            let off = (i0 + ii) * n + j0;
                            if w == NR {
                                // Full-width tile: fixed-size loop so the
                                // accumulate vectorises.
                                let orow: &mut [f32; NR] =
                                    // fedlint::allow(no-panic-paths): `chunk[off..off + NR]` is exactly NR elements, so the array conversion is infallible
                                    (&mut chunk[off..off + NR]).try_into().unwrap();
                                for (o, &v) in orow.iter_mut().zip(acc_row) {
                                    *o += v;
                                }
                            } else {
                                for (o, &v) in chunk[off..off + w].iter_mut().zip(acc_row) {
                                    *o += v;
                                }
                            }
                        }
                    }
                }
                PACK_A.with(|c| *c.borrow_mut() = pa);
            };

            if par {
                out[..m * n]
                    .par_chunks_mut(MC * n)
                    .enumerate()
                    .for_each(|(blk, chunk)| run_block(blk * MC, chunk));
            } else {
                run_block(0, &mut out[..m * n]);
            }
        }
    }
    PACK_B.with(|c| *c.borrow_mut() = pb);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = s;
            }
        }
        out
    }

    fn random(shape: [usize; 2], seed: u64) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let n = shape[0] * shape[1];
        Tensor::from_vec(shape, (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{} vs {}", x, y);
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_noop() {
        let a = random([5, 5], 1);
        let mut id = Tensor::zeros([5, 5]);
        for i in 0..5 {
            *id.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&matmul(&a, &id), &a, 1e-6);
        assert_close(&matmul(&id, &a), &a, 1e-6);
    }

    /// The micro-kernel path must be exact for every edge-tile combination:
    /// sizes below, at, and just past the `MR`/`NR`/`MC` boundaries.
    #[test]
    fn matches_naive_over_sizes() {
        for (m, k, n, seed) in [
            (1, 1, 1, 0),
            (5, 7, 3, 1),
            (3, 7, 5, 2),
            (4, 9, 8, 3),    // exact tile multiples
            (17, 9, 33, 4),  // ragged in both m and n
            (70, 40, 90, 5), // multiple MC blocks + ragged edges
            (130, 40, 90, 6),
            (2, 64, 2, 7),      // deep k, tiny tile
            (65, 1, 9, 8),      // k = 1
            (30, 300, 600, 9),  // spans KC and NC cache blocks
            (10, 257, 513, 10), // ragged cache-block edges
        ] {
            let a = random([m, k], seed);
            let b = random([k, n], seed + 100);
            assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
        }
    }

    #[test]
    fn parallel_path_matches_naive() {
        let a = random([130, 40], 7);
        let b = random([40, 90], 8);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-3);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = random([9, 6], 4); // stored k×m for matmul_tn: k=9, m=6
        let b = random([9, 5], 5);
        let expected = matmul(&a.transpose2(), &b);
        assert_close(&matmul_tn(&a, &b), &expected, 1e-4);
    }

    /// `matmul_tn` at a size large enough to take the parallel row-blocked
    /// path (m·n ≥ threshold, m > MC).
    #[test]
    fn tn_parallel_path_matches_explicit_transpose() {
        let a = random([40, 130], 9); // k=40, m=130
        let b = random([40, 90], 10);
        let expected = matmul(&a.transpose2(), &b);
        assert_close(&matmul_tn(&a, &b), &expected, 1e-3);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = random([6, 9], 4);
        let b = random([5, 9], 5); // stored n×k
        let expected = matmul(&a, &b.transpose2());
        assert_close(&matmul_nt(&a, &b), &expected, 1e-4);
    }

    #[test]
    fn nt_parallel_path_matches_explicit_transpose() {
        let a = random([130, 40], 11);
        let b = random([90, 40], 12); // stored n×k
        let expected = matmul(&a, &b.transpose2());
        assert_close(&matmul_nt(&a, &b), &expected, 1e-3);
    }

    /// The slice-level entry points accumulate (`C += A·B`) rather than
    /// overwrite — the contract conv/dense gradient passes rely on.
    #[test]
    fn gemm_slices_accumulate() {
        let a = random([3, 4], 20);
        let b = random([4, 5], 21);
        let expected = naive(&a, &b);
        let mut out = vec![1.0f32; 3 * 5];
        gemm_nn(3, 4, 5, a.data(), b.data(), &mut out);
        for (o, e) in out.iter().zip(expected.data()) {
            assert!((o - (e + 1.0)).abs() < 1e-4, "{} vs {}", o, e + 1.0);
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = random([7, 4], 11);
        let x = random([4, 1], 12);
        let y = matvec(&a, &x.reshape([4]));
        let expected = matmul(&a, &x);
        for i in 0..7 {
            assert!((y.data()[i] - expected.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = matmul(&a, &b);
    }
}
