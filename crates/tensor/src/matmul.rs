//! Cache-blocked, rayon-parallel matrix multiplication.
//!
//! The GEMM here is deliberately simple: an `i-k-j` loop nest over row-major
//! data (so the inner loop streams both `b` and `out` contiguously), blocked
//! over rows and parallelised with rayon across row blocks. That is enough to
//! train the scaled-down CNNs of this reproduction at interactive speeds
//! without pulling in a BLAS.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Row-block size for the parallel GEMM. Chosen so a block of `a` rows plus
/// the `b` panel stay comfortably in L2 for the matrix sizes this workload
/// produces (im2col panels of a few hundred columns).
const ROW_BLOCK: usize = 32;

/// Matrices smaller than this (by output element count) are multiplied on
/// the calling thread: rayon's fork overhead would dominate.
const PAR_THRESHOLD: usize = 64 * 64;

/// `C = A (m×k) * B (k×n)`.
///
/// # Panics
/// Panics if the operands are not 2-d or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a);
    let (k2, n) = mat_dims(b);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {}x{} * {}x{}", m, k, k2, n);

    let mut out = vec![0.0f32; m * n];
    if m * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, chunk)| {
                let row0 = blk * ROW_BLOCK;
                let rows = chunk.len() / n;
                gemm_block(a.data(), b.data(), chunk, row0, rows, k, n);
            });
    } else {
        gemm_block(a.data(), b.data(), &mut out, 0, m, k, n);
    }
    Tensor::from_vec([m, n], out)
}

/// `C = A^T (k×m)^T=(m×k)… ` — convenience: multiply `A^T * B` where
/// `a` is stored `k×m`. Used by dense-layer backward passes without
/// materialising the transpose.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = mat_dims(a);
    let (k2, n) = mat_dims(b);
    assert_eq!(k, k2, "matmul_tn inner dimension mismatch");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    // out[i][j] = sum_p a[p][i] * b[p][j]
    for p in 0..k {
        let brow = &bd[p * n..(p + 1) * n];
        let arow = &ad[p * m..(p + 1) * m];
        for i in 0..m {
            let av = arow[i];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec([m, n], out)
}

/// `C = A (m×k) * B^T` where `b` is stored `n×k`. Used by dense-layer
/// backward passes (grad wrt input) without materialising the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a);
    let (n, k2) = mat_dims(b);
    assert_eq!(k, k2, "matmul_nt inner dimension mismatch");
    let ad = a.data();
    let bd = b.data();
    let compute_row = |i: usize, orow: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o = acc;
        }
    };
    let mut out = vec![0.0f32; m * n];
    if m * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, orow)| compute_row(i, orow));
    } else {
        for (i, orow) in out.chunks_mut(n).enumerate() {
            compute_row(i, orow);
        }
    }
    Tensor::from_vec([m, n], out)
}

/// Matrix–vector product `y = A (m×k) * x (k)`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a);
    assert_eq!(x.numel(), k, "matvec dimension mismatch");
    let ad = a.data();
    let xd = x.data();
    let mut y = vec![0.0f32; m];
    for (i, yi) in y.iter_mut().enumerate() {
        let row = &ad[i * k..(i + 1) * k];
        *yi = row.iter().zip(xd).map(|(&a, &b)| a * b).sum();
    }
    Tensor::from_vec([m], y)
}

fn mat_dims(t: &Tensor) -> (usize, usize) {
    assert_eq!(t.shape().ndim(), 2, "expected a 2-d tensor, got {}", t.shape());
    (t.dims()[0], t.dims()[1])
}

/// Multiply rows `[row0, row0+rows)` of `a` into `chunk` (row-major, `rows×n`).
fn gemm_block(a: &[f32], b: &[f32], chunk: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    for i in 0..rows {
        let arow = &a[(row0 + i) * k..(row0 + i + 1) * k];
        let orow = &mut chunk[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = s;
            }
        }
        out
    }

    fn random(shape: [usize; 2], seed: u64) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let n = shape[0] * shape[1];
        Tensor::from_vec(shape, (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{} vs {}", x, y);
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_noop() {
        let a = random([5, 5], 1);
        let mut id = Tensor::zeros([5, 5]);
        for i in 0..5 {
            *id.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&matmul(&a, &id), &a, 1e-6);
        assert_close(&matmul(&id, &a), &a, 1e-6);
    }

    #[test]
    fn matches_naive_over_sizes() {
        for (m, k, n, seed) in [(1, 1, 1, 0), (3, 7, 5, 1), (17, 9, 33, 2), (70, 40, 90, 3)] {
            let a = random([m, k], seed);
            let b = random([k, n], seed + 100);
            assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
        }
    }

    #[test]
    fn parallel_path_matches_naive() {
        let a = random([130, 40], 7);
        let b = random([40, 90], 8);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-3);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = random([9, 6], 4); // stored k×m for matmul_tn: k=9, m=6
        let b = random([9, 5], 5);
        let expected = matmul(&a.transpose2(), &b);
        assert_close(&matmul_tn(&a, &b), &expected, 1e-4);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = random([6, 9], 4);
        let b = random([5, 9], 5); // stored n×k
        let expected = matmul(&a, &b.transpose2());
        assert_close(&matmul_nt(&a, &b), &expected, 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = random([7, 4], 11);
        let x = random([4, 1], 12);
        let y = matvec(&a, &x.reshape([4]));
        let expected = matmul(&a, &x);
        for i in 0..7 {
            assert!((y.data()[i] - expected.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = matmul(&a, &b);
    }
}
