//! Weight initialisation schemes.

use crate::tensor::Tensor;
use rand::Rng;
use rand_distr_shim::Normal;

/// Minimal normal-distribution sampler so we avoid the `rand_distr` crate:
/// Box–Muller over `rand`'s uniform source.
mod rand_distr_shim {
    use rand::Rng;

    /// A normal distribution `N(mean, std²)` sampled via Box–Muller.
    pub struct Normal {
        mean: f32,
        std: f32,
    }

    impl Normal {
        /// Create the distribution. `std` must be non-negative.
        pub fn new(mean: f32, std: f32) -> Self {
            assert!(std >= 0.0, "std must be non-negative");
            Normal { mean, std }
        }

        /// Draw one sample.
        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            // Box–Muller: u1 in (0,1], u2 in [0,1).
            let u1: f32 = 1.0 - rng.gen::<f32>();
            let u2: f32 = rng.gen();
            let mag = (-2.0 * u1.ln()).sqrt();
            self.mean + self.std * mag * (2.0 * std::f32::consts::PI * u2).cos()
        }
    }
}

pub use rand_distr_shim::Normal as NormalDist;

/// Standard normal samples with the given shape.
pub fn randn(shape: impl Into<crate::Shape>, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let dist = Normal::new(0.0, 1.0);
    let n = shape.numel();
    Tensor::from_vec(shape, (0..n).map(|_| dist.sample(rng)).collect())
}

/// Uniform samples in `[lo, hi)` with the given shape.
pub fn rand_uniform(
    shape: impl Into<crate::Shape>,
    lo: f32,
    hi: f32,
    rng: &mut impl Rng,
) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    Tensor::from_vec(shape, (0..n).map(|_| rng.gen_range(lo..hi)).collect())
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suited to tanh/linear layers and used
/// for classifier heads.
pub fn xavier_uniform(
    shape: impl Into<crate::Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rand_uniform(shape, -a, a, rng)
}

/// He/Kaiming normal initialisation: `N(0, 2/fan_in)`. Suited to ReLU
/// networks and used for conv/dense hidden layers.
pub fn he_normal(shape: impl Into<crate::Shape>, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let dist = Normal::new(0.0, std);
    let n = shape.numel();
    Tensor::from_vec(shape, (0..n).map(|_| dist.sample(rng)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn randn_has_roughly_unit_moments() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let t = randn([10_000], &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.1, "var {}", var);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let t = xavier_uniform([1000], 50, 50, &mut rng);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(t.data().iter().all(|&x| x >= -a && x < a));
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let t = he_normal([20_000], 200, &mut rng);
        let std = (t.data().iter().map(|x| x * x).sum::<f32>() / 20_000.0).sqrt();
        let expect = (2.0f32 / 200.0).sqrt();
        assert!((std - expect).abs() < 0.01, "std {} expect {}", std, expect);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = rand::rngs::SmallRng::seed_from_u64(9);
        let mut r2 = rand::rngs::SmallRng::seed_from_u64(9);
        assert_eq!(randn([16], &mut r1), randn([16], &mut r2));
    }
}
