//! Shape and stride bookkeeping for row-major tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a tensor: a small vector of dimension extents.
///
/// Shapes are row-major ("C order"): the last dimension is contiguous in
/// memory. A scalar is represented by the empty shape.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Create a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics in debug builds if the index is out of bounds or has the wrong
    /// arity.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index arity mismatch");
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.0.len()).rev() {
            debug_assert!(index[i] < self.0[i], "index out of bounds");
            off += index[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// View as a slice of extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_empty_shape_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn numel_multiplies_extents() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[1, 0, 1]), 13);
    }

    #[test]
    fn from_array_and_vec() {
        let a: Shape = [2, 2].into();
        let b: Shape = vec![2, 2].into();
        assert_eq!(a, b);
    }
}
