//! Deterministic RNG derivation.
//!
//! Every stochastic component of the simulation (dataset synthesis, client
//! partitioning, model init, local SGD shuffling, client sampling) derives
//! its RNG from a root experiment seed plus a stable *stream label*. Results
//! are therefore bit-reproducible regardless of rayon's thread schedule.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derive a [`SmallRng`] from a root seed and a list of stream components.
///
/// The derivation is a tiny SplitMix64-style mix — not cryptographic, just
/// well-spread — so `derive(seed, &[a, b])` and `derive(seed, &[b, a])`
/// produce unrelated streams.
pub fn derive(root_seed: u64, stream: &[u64]) -> SmallRng {
    let mut state = root_seed ^ 0x9E37_79B9_7F4A_7C15;
    for &s in stream {
        state = splitmix64(state ^ splitmix64(s.wrapping_add(0xBF58_476D_1CE4_E5B9)));
    }
    SmallRng::seed_from_u64(splitmix64(state))
}

/// SplitMix64 finalizer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Well-known stream labels, to avoid typo'd ad-hoc constants at call sites.
pub mod streams {
    /// Dataset synthesis (per dataset profile).
    pub const DATA: u64 = 1;
    /// Partitioning samples across clients.
    pub const PARTITION: u64 = 2;
    /// Model weight initialisation.
    pub const MODEL_INIT: u64 = 3;
    /// Local training (shuffling, per client per round).
    pub const LOCAL_TRAIN: u64 = 4;
    /// Server-side client sampling per round.
    pub const SAMPLING: u64 = 5;
    /// Anything evaluation-related.
    pub const EVAL: u64 = 6;
    /// Per-round client dropout decisions.
    pub const DROPOUT: u64 = 7;
    /// Fault injection: downlink transmission attempts.
    pub const FAULT_DOWNLINK: u64 = 8;
    /// Fault injection: uplink fate (straggle / loss / corruption draws).
    pub const FAULT_UPLINK: u64 = 9;
    /// Fault injection: corruption pattern (mode and poisoned indices).
    pub const FAULT_CORRUPT: u64 = 10;
    /// Update-compression codecs: stochastic rounding draws, per
    /// `(round, client)`.
    pub const CODEC: u64 = 11;
    /// Retry backoff jitter for the shared bounded-retry policy, per
    /// `(round, client, attempt)` — used by the networked transport so a
    /// fleet of workers never retries in lock-step.
    pub const RETRY_BACKOFF: u64 = 12;
    /// Network chaos proxy: per-frame drop/delay/truncate/corrupt draws,
    /// keyed by `(round, client)` when the frame carries them.
    pub const CHAOS: u64 = 13;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive(7, &[1, 2, 3]);
        let mut b = derive(7, &[1, 2, 3]);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_order_different_stream() {
        let mut a = derive(7, &[1, 2]);
        let mut b = derive(7, &[2, 1]);
        let av: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = derive(7, &[1]);
        let mut b = derive(8, &[1]);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn splitmix_spreads_small_inputs() {
        let outs: Vec<u64> = (0..8u64).map(splitmix64).collect();
        for w in outs.windows(2) {
            assert_ne!(w[0], w[1]);
            // Hamming distance between consecutive outputs should be large.
            assert!((w[0] ^ w[1]).count_ones() > 10);
        }
    }
}
