//! Pairwise distances between flat weight vectors.
//!
//! These are the primitives Eq. 3 of the paper is built on: the server
//! receives one flat vector of (partial) model weights per client and
//! computes an `m×m` proximity matrix.

use rayon::prelude::*;

/// Euclidean (L2) distance between two equal-length vectors.
///
/// # Panics
/// Panics if lengths differ.
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2 distance length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt() as f32
}

/// Cosine *distance* `1 - cos(a, b)` between two equal-length vectors.
/// Returns 1.0 when either vector is (numerically) zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine distance length mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    let denom = (na.sqrt() * nb.sqrt()).max(1e-30);
    (1.0 - dot / denom) as f32
}

/// Cosine *similarity* in `[-1, 1]`; 0.0 when either vector is zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine(a, b)
}

/// Which metric a pairwise matrix should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Metric {
    /// Euclidean distance — the paper's Eq. 3.
    L2,
    /// Cosine distance — used by the CFL (Sattler et al.) baseline.
    Cosine,
}

impl Metric {
    /// Evaluate the metric on a pair of vectors.
    pub fn eval(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => l2(a, b),
            Metric::Cosine => cosine(a, b),
        }
    }
}

/// Full symmetric `m×m` pairwise distance matrix (row-major, zero diagonal),
/// computed in parallel across rows.
///
/// # Panics
/// Panics if the vectors do not all have the same length.
pub fn pairwise_matrix(vectors: &[Vec<f32>], metric: Metric) -> Vec<f32> {
    let m = vectors.len();
    if m == 0 {
        return Vec::new();
    }
    let d = vectors[0].len();
    assert!(
        vectors.iter().all(|v| v.len() == d),
        "all vectors must share one length"
    );
    let mut out = vec![0.0f32; m * m];
    // Compute the strict upper triangle in parallel (one task per row), then
    // mirror. Each row writes a disjoint slice, so no synchronisation needed.
    out.par_chunks_mut(m).enumerate().for_each(|(i, row)| {
        for j in (i + 1)..m {
            row[j] = metric.eval(&vectors[i], &vectors[j]);
        }
    });
    for i in 0..m {
        for j in 0..i {
            out[i * m + j] = out[j * m + i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_known_values() {
        assert_eq!(l2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn cosine_known_values() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 2.0], &[2.0, 4.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_max_distance() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn pairwise_is_symmetric_with_zero_diagonal() {
        let vs = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let m = pairwise_matrix(&vs, Metric::L2);
        for i in 0..3 {
            assert_eq!(m[i * 3 + i], 0.0);
            for j in 0..3 {
                assert_eq!(m[i * 3 + j], m[j * 3 + i]);
            }
        }
        assert_eq!(m[1], 1.0); // d(0,1)
        assert_eq!(m[2], 2.0); // d(0,2)
        assert!((m[5] - 5.0f32.sqrt()).abs() < 1e-6); // d(1,2)
    }

    #[test]
    fn pairwise_empty_input() {
        assert!(pairwise_matrix(&[], Metric::L2).is_empty());
    }

    #[test]
    fn metric_dispatch() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((Metric::L2.eval(&a, &b) - std::f32::consts::SQRT_2).abs() < 1e-6);
        assert!((Metric::Cosine.eval(&a, &b) - 1.0).abs() < 1e-6);
    }
}
