//! The dense row-major `f32` tensor type.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense, owned, row-major tensor of `f32` values.
///
/// This is the single array type used throughout the reproduction. It keeps
/// its data in a flat `Vec<f32>`; views and broadcasting are intentionally
/// not supported — the NN layers work with explicit shapes, which keeps the
/// backward passes easy to audit.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor from a shape and existing data.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} (numel {})",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor { shape, data }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// A scalar (0-dimensional) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable access to the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    #[inline]
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterpret the tensor with a new shape of equal element count.
    ///
    /// # Panics
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} elements into shape {}",
            self.numel(),
            shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// In-place reshape, avoiding the copy of [`Tensor::reshape`].
    pub fn reshape_in_place(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape element count mismatch"
        );
        self.shape = shape;
    }

    /// Apply a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply a function to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip_with");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * other`, the BLAS `axpy` primitive.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm_l2(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.numel(), other.numel(), "dot length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum::<f64>() as f32
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Transpose a 2-d tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 2-dimensional.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.ndim(), 2, "transpose2 requires a matrix");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec([c, r], out)
    }

    /// Extract row `i` of a 2-d tensor as a new 1-d tensor.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.shape.ndim(), 2, "row requires a matrix");
        let c = self.shape.dim(1);
        Tensor::from_vec([c], self.data[i * c..(i + 1) * c].to_vec())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{:.4}, {:.4}, … ; n={}])",
                self.data[0],
                self.data[1],
                self.numel()
            )
        }
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones([4]);
        assert!(o.data().iter().all(|&x| x == 1.0));
        let f = Tensor::full([2], 3.5);
        assert_eq!(f.data(), &[3.5, 3.5]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        *t.at_mut(&[1, 2]) = 7.0;
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        let r = t.reshape([3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec([3], vec![1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max(), 3.0);
        let n = t.norm_l2();
        assert!((n - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn transpose2_is_involution() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        let tt = t.transpose2().transpose2();
        assert_eq!(t, tt);
        assert_eq!(t.transpose2().at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec([3], vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros([2]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn operator_sugar() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2], vec![3.0, 4.0]);
        assert_eq!((&a + &b).data(), &[4.0, 6.0]);
        assert_eq!((&b - &a).data(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        assert_eq!(t.row(1).data(), &[3.0, 4.0, 5.0]);
    }
}
