//! Property-based tests of the tensor substrate's algebraic invariants.

use fedclust_tensor::distance::{cosine, l2, pairwise_matrix, Metric};
use fedclust_tensor::linalg::svd;
use fedclust_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use fedclust_tensor::ops::{log_softmax_rows, softmax_rows};
use fedclust_tensor::Tensor;
use proptest::prelude::*;

fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec([rows, cols], v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)·C == A·(B·C) within f32 tolerance.
    #[test]
    fn matmul_is_associative(a in tensor(4, 3), b in tensor(3, 5), c in tensor(5, 2)) {
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    /// A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributes_over_addition(a in tensor(3, 4), b in tensor(4, 3), c in tensor(4, 3)) {
        let left = matmul(&a, &(&b + &c));
        let right = &matmul(&a, &b) + &matmul(&a, &c);
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    /// The transpose-fused kernels agree with explicit transposes.
    #[test]
    fn fused_transpose_kernels_agree(a in tensor(5, 3), b in tensor(5, 4)) {
        let tn = matmul_tn(&a, &b);               // a^T b
        let explicit = matmul(&a.transpose2(), &b);
        for (x, y) in tn.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let c = b.transpose2();                   // 4×5
        let nt = matmul_nt(&a.transpose2(), &c);  // (3×5)·(5×4) via nt
        let explicit = matmul(&a.transpose2(), &c.transpose2());
        for (x, y) in nt.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Softmax rows are probability vectors; log-softmax is its log.
    #[test]
    fn softmax_rows_are_distributions(t in tensor(4, 6)) {
        let s = softmax_rows(&t);
        for i in 0..4 {
            let row = &s.data()[i * 6..(i + 1) * 6];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        let ls = log_softmax_rows(&t);
        for (a, b) in ls.data().iter().zip(s.data()) {
            prop_assert!((a - b.max(1e-30).ln()).abs() < 1e-3);
        }
    }

    /// L2 satisfies metric axioms (identity, symmetry, triangle inequality).
    #[test]
    fn l2_metric_axioms(
        a in proptest::collection::vec(-50.0f32..50.0, 6),
        b in proptest::collection::vec(-50.0f32..50.0, 6),
        c in proptest::collection::vec(-50.0f32..50.0, 6),
    ) {
        prop_assert!(l2(&a, &a) < 1e-6);
        prop_assert!((l2(&a, &b) - l2(&b, &a)).abs() < 1e-4);
        prop_assert!(l2(&a, &c) <= l2(&a, &b) + l2(&b, &c) + 1e-3);
    }

    /// Cosine distance stays in [0, 2] and is scale-invariant.
    #[test]
    fn cosine_bounds_and_scale_invariance(
        a in proptest::collection::vec(-10.0f32..10.0, 5),
        b in proptest::collection::vec(-10.0f32..10.0, 5),
        scale in 0.1f32..10.0,
    ) {
        let d = cosine(&a, &b);
        prop_assert!((-1e-5..=2.0 + 1e-5).contains(&d));
        let scaled: Vec<f32> = a.iter().map(|&x| x * scale).collect();
        prop_assert!((cosine(&scaled, &b) - d).abs() < 1e-3);
    }

    /// Pairwise matrices are symmetric with zero diagonal for both metrics.
    #[test]
    fn pairwise_matrix_is_symmetric(
        vecs in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 2..8),
    ) {
        for metric in [Metric::L2, Metric::Cosine] {
            let n = vecs.len();
            let m = pairwise_matrix(&vecs, metric);
            for i in 0..n {
                prop_assert_eq!(m[i * n + i], 0.0);
                for j in 0..n {
                    prop_assert!((m[i * n + j] - m[j * n + i]).abs() < 1e-6);
                }
            }
        }
    }

    /// SVD reconstructs the input and yields sorted nonnegative σ.
    #[test]
    fn svd_reconstruction(a in tensor(6, 4)) {
        let s = svd(&a);
        prop_assert!(s.sigma.iter().all(|&x| x >= 0.0));
        for w in s.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-4);
        }
        // Reconstruct U Σ V^T.
        let (m, r) = (s.u.dims()[0], s.u.dims()[1]);
        let mut us = Tensor::zeros([m, r]);
        for i in 0..m {
            for j in 0..r {
                *us.at_mut(&[i, j]) = s.u.at(&[i, j]) * s.sigma[j];
            }
        }
        let rec = matmul(&us, &s.v.transpose2());
        for (x, y) in rec.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    /// Reshape round-trips preserve data.
    #[test]
    fn reshape_round_trip(v in proptest::collection::vec(-5.0f32..5.0, 24)) {
        let t = Tensor::from_vec([24], v.clone());
        let r = t.reshape([2, 3, 4]).reshape([4, 6]).reshape([24]);
        prop_assert_eq!(r.data(), &v[..]);
    }
}
