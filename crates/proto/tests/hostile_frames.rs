//! Fuzz-style battery for the wire decoder, mirroring the codec
//! conformance suite's hostility model: arbitrary bytes, truncations,
//! bit flips, and — the interesting class — frames whose *checksum is
//! valid* but whose payload structure is hostile (lying counts, bad
//! kinds, trailing garbage). The decoder must return a typed error or a
//! size-bounded message; it must never panic and never allocate beyond
//! the frame caps.

use fedclust_proto::msg::{self, Msg, PushBody};
use fedclust_proto::wire::{
    decode_frame, decode_frame_prefix, encode_frame, fnv64, read_raw_frame, CHECKSUM_BYTES,
    HEADER_BYTES, MAGIC, MAX_PAYLOAD_BYTES, PROTO_VERSION,
};
use proptest::prelude::*;

/// Re-checksum a mutated frame so only the *structure* is hostile.
fn reseal(frame: &mut Vec<u8>) {
    let body_len = frame.len().saturating_sub(CHECKSUM_BYTES);
    let sum = fnv64(&frame[..body_len]);
    frame.truncate(body_len);
    frame.extend_from_slice(&sum.to_le_bytes());
}

/// A checksum-valid frame holding arbitrary kind + payload bytes.
fn sealed_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    encode_frame(kind, payload)
}

/// Upper bound on the memory a decoded message may pin, given every
/// vector/string cap is enforced before allocation.
fn msg_is_bounded(m: &Msg) -> bool {
    let vec_ok = |v: &Vec<f32>| v.len() <= msg::MAX_VEC_ELEMS;
    match m {
        Msg::Welcome { argv, .. } => {
            argv.len() <= msg::MAX_ARGV && argv.iter().all(|a| a.len() <= msg::MAX_STR_BYTES)
        }
        Msg::Reject { reason } => reason.len() <= msg::MAX_STR_BYTES,
        Msg::Work {
            state, residual, ..
        } => vec_ok(state) && vec_ok(residual),
        Msg::Push { body, .. } => match body {
            PushBody::Raw(state) => vec_ok(state),
            PushBody::Encoded { wire, residual } => {
                wire.len() <= MAX_PAYLOAD_BYTES && vec_ok(residual)
            }
        },
        _ => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw garbage: any byte soup fed to the prefix decoder errors or
    /// yields a bounded frame. Never panics.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=u8::MAX, 0..256)) {
        if let Ok((frame, consumed)) = decode_frame_prefix(&bytes) {
            prop_assert!(consumed <= bytes.len());
            prop_assert!(frame.payload.len() <= MAX_PAYLOAD_BYTES);
        }
        let mut cursor = std::io::Cursor::new(bytes.clone());
        if let Ok(raw) = read_raw_frame(&mut cursor) {
            prop_assert!(raw.len() <= HEADER_BYTES + MAX_PAYLOAD_BYTES + CHECKSUM_BYTES);
        }
    }

    /// Garbage that *starts like a frame*: valid magic + version, then
    /// arbitrary kind/flags/length/payload bytes. Exercises the header
    /// paths that pure noise rarely reaches.
    #[test]
    fn framed_garbage_never_panics(
        kind in 0u8..=u8::MAX,
        flags in 0u8..=u8::MAX,
        len in 0u32..=u32::MAX,
        tail in proptest::collection::vec(0u8..=u8::MAX, 0..128),
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        bytes.push(kind);
        bytes.push(flags);
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&tail);
        let _ = decode_frame_prefix(&bytes);
        let mut cursor = std::io::Cursor::new(bytes);
        if let Ok(raw) = read_raw_frame(&mut cursor) {
            prop_assert!(raw.len() <= HEADER_BYTES + MAX_PAYLOAD_BYTES + CHECKSUM_BYTES);
        }
    }

    /// Checksum-valid but structurally hostile: arbitrary payload bytes
    /// sealed under every message kind (plus unknown kinds). The message
    /// decoder must error or return a size-bounded message.
    #[test]
    fn sealed_hostile_payloads_never_panic(
        kind in 0u8..16,
        payload in proptest::collection::vec(0u8..=u8::MAX, 0..512),
    ) {
        let bytes = sealed_frame(kind, &payload);
        let frame = decode_frame(&bytes).expect("sealed frame passes the frame layer");
        if let Ok(m) = Msg::decode_frame(&frame) {
            prop_assert!(msg_is_bounded(&m));
            // A successful decode must re-encode to the same frame:
            // the layouts leave no room for two byte-strings mapping to
            // one message (canonical encoding).
            prop_assert_eq!(m.encode(), bytes);
        }
    }

    /// Mutating any single byte of a real message's frame (then
    /// resealing the checksum) never panics the message decoder.
    #[test]
    fn resealed_mutations_never_panic(
        at in 0usize..64,
        val in 0u8..=u8::MAX,
        state in proptest::collection::vec(-2.0f32..2.0, 0..8),
    ) {
        let msg = Msg::Push {
            mode: msg::MODE_TRAIN,
            round: 3,
            client: 9,
            steps: 11,
            weight: 4.0,
            body: PushBody::Raw(state),
        };
        let mut bytes = msg.encode();
        let body_len = bytes.len() - CHECKSUM_BYTES;
        bytes[at % body_len] = val;
        reseal(&mut bytes);
        // Header mutation may invalidate the frame itself; that's fine.
        if let Ok(frame) = decode_frame(&bytes) {
            if let Ok(m) = Msg::decode_frame(&frame) {
                prop_assert!(msg_is_bounded(&m));
            }
        }
    }

    /// Well-formed messages round-trip exactly through the full frame
    /// path, including non-finite floats (the wire must not editorialise).
    #[test]
    fn work_roundtrips(
        round in 0u32..=u32::MAX,
        client in 0u32..=u32::MAX,
        epochs in 0u32..=u32::MAX,
        prox in (0u8..2, (0u32..=u32::MAX).prop_map(f32::from_bits))
            .prop_map(|(has, v)| (has == 1).then_some(v)),
        state in proptest::collection::vec(
            (0u32..=u32::MAX).prop_map(f32::from_bits), 0..32),
        residual in proptest::collection::vec(
            (0u32..=u32::MAX).prop_map(f32::from_bits), 0..32),
    ) {
        let msg = Msg::Work {
            mode: msg::MODE_TRAIN,
            round,
            client,
            epochs,
            prox_mu: prox,
            state,
            residual,
        };
        let frame = decode_frame(&msg.encode()).unwrap();
        let back = Msg::decode_frame(&frame).unwrap();
        // Compare via re-encoding so NaN payloads compare bitwise.
        prop_assert_eq!(back.encode(), msg.encode());
    }

    /// Truncating a valid frame at any point errors cleanly.
    #[test]
    fn truncation_is_typed(cut_frac in 0.0f64..1.0) {
        let msg = Msg::Welcome {
            worker_id: 1,
            argv: vec!["run".into(), "--clients".into(), "8".into()],
        };
        let bytes = msg.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(decode_frame(&bytes[..cut]).is_err());
    }
}
