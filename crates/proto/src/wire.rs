//! Frame layer: length-prefixed, versioned, checksummed byte frames.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset   size  field
//! 0        4     magic "FCLP"
//! 4        2     protocol version
//! 6        1     message kind
//! 7        1     flags (reserved, must be zero)
//! 8        4     payload length in bytes (<= MAX_PAYLOAD_BYTES)
//! 12       len   payload
//! 12+len   8     FNV-1a-64 checksum over header + payload
//! ```
//!
//! The checksum covers the header so a flipped kind or length byte is
//! detected, not just payload damage. A hostile length field errors with
//! [`ProtoError::Oversized`] *before* any allocation happens, so a peer
//! cannot make the reader balloon its heap with a 12-byte frame.

use std::io::{Read, Write};

/// First bytes of every frame; anything else means the peer is not
/// speaking this protocol (or the stream lost sync) and the connection
/// must be dropped rather than resynchronised.
pub const MAGIC: [u8; 4] = *b"FCLP";

/// Protocol version carried in every frame. Version negotiation is
/// exact-match: a `Hello` with a different version is answered with
/// `Reject` and the connection closed.
pub const PROTO_VERSION: u16 = 1;

/// Fixed header size: magic + version + kind + flags + payload length.
pub const HEADER_BYTES: usize = 12;

/// Trailing FNV-1a-64 checksum size.
pub const CHECKSUM_BYTES: usize = 8;

/// Hard cap on a single frame's payload. Large enough for a full
/// `VggMini` state vector plus residual (each f32 = 4 bytes), small
/// enough that a hostile length cannot cause a meaningful allocation
/// spike: 64 MiB.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 26;

/// Everything that can go wrong while decoding bytes into frames or
/// messages. Deliberately mirrors the checkpoint codec's error taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Fewer bytes than the layout requires.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Frame version differs from [`PROTO_VERSION`].
    BadVersion(u16),
    /// Unknown message kind byte.
    BadKind(u8),
    /// Reserved flags byte was non-zero.
    BadFlags(u8),
    /// Stored checksum does not match the recomputed one.
    Checksum,
    /// Header-declared payload length exceeds [`MAX_PAYLOAD_BYTES`].
    Oversized(usize),
    /// A count field exceeds its per-message cap.
    ImplausibleCount(usize),
    /// Payload bytes left over after the message was fully decoded.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A field held a value outside its legal range (e.g. mode byte).
    BadField(&'static str),
    /// Underlying socket error, reduced to its kind so the error stays
    /// comparable in tests and retry logic can branch on it.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            ProtoError::BadVersion(v) => {
                write!(f, "protocol version {v} (expected {PROTO_VERSION})")
            }
            ProtoError::BadKind(k) => write!(f, "unknown message kind {k}"),
            ProtoError::BadFlags(b) => write!(f, "reserved flags byte {b:#04x} non-zero"),
            ProtoError::Checksum => write!(f, "frame checksum mismatch"),
            ProtoError::Oversized(n) => {
                write!(f, "payload length {n} exceeds cap {MAX_PAYLOAD_BYTES}")
            }
            ProtoError::ImplausibleCount(n) => write!(f, "implausible element count {n}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing payload bytes"),
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::BadField(name) => write!(f, "field `{name}` out of range"),
            ProtoError::Io(kind) => write!(f, "io error: {kind:?}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e.kind())
    }
}

/// FNV-1a 64-bit, same constants as the checkpoint store uses.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A validated frame: version checked, flags zero, checksum verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: u8,
    pub payload: Vec<u8>,
}

/// Assemble a full frame (header + payload + checksum) for `kind`.
///
/// Panics only if `payload` exceeds [`MAX_PAYLOAD_BYTES`], which is a
/// programming error on the *sending* side, never reachable from
/// received bytes.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD_BYTES,
        "frame payload {} exceeds cap {}",
        payload.len(),
        MAX_PAYLOAD_BYTES
    );
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + CHECKSUM_BYTES);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.push(kind);
    out.push(0); // flags, reserved
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Read a little-endian u16 at a byte offset, bounds-checked.
fn decode_u16_at(bytes: &[u8], at: usize) -> Result<u16, ProtoError> {
    let end = at.checked_add(2).ok_or(ProtoError::Truncated)?;
    let slice = bytes.get(at..end).ok_or(ProtoError::Truncated)?;
    let arr: [u8; 2] = slice.try_into().map_err(|_| ProtoError::Truncated)?;
    Ok(u16::from_le_bytes(arr))
}

/// Read a little-endian u32 at a byte offset, bounds-checked.
fn decode_u32_at(bytes: &[u8], at: usize) -> Result<u32, ProtoError> {
    let end = at.checked_add(4).ok_or(ProtoError::Truncated)?;
    let slice = bytes.get(at..end).ok_or(ProtoError::Truncated)?;
    let arr: [u8; 4] = slice.try_into().map_err(|_| ProtoError::Truncated)?;
    Ok(u32::from_le_bytes(arr))
}

/// Read a little-endian u64 at a byte offset, bounds-checked.
fn decode_u64_at(bytes: &[u8], at: usize) -> Result<u64, ProtoError> {
    let end = at.checked_add(8).ok_or(ProtoError::Truncated)?;
    let slice = bytes.get(at..end).ok_or(ProtoError::Truncated)?;
    let arr: [u8; 8] = slice.try_into().map_err(|_| ProtoError::Truncated)?;
    Ok(u64::from_le_bytes(arr))
}

/// Validate a header: magic, version, flags, and payload-length cap.
/// Returns the declared payload length. Does not touch the payload.
fn decode_header(head: &[u8]) -> Result<usize, ProtoError> {
    let magic = head.get(..4).ok_or(ProtoError::Truncated)?;
    if magic != MAGIC {
        let arr: [u8; 4] = magic.try_into().map_err(|_| ProtoError::Truncated)?;
        return Err(ProtoError::BadMagic(arr));
    }
    let version = decode_u16_at(head, 4)?;
    if version != PROTO_VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let flags = *head.get(7).ok_or(ProtoError::Truncated)?;
    if flags != 0 {
        return Err(ProtoError::BadFlags(flags));
    }
    let len = decode_u32_at(head, 8)? as usize;
    if len > MAX_PAYLOAD_BYTES {
        return Err(ProtoError::Oversized(len));
    }
    Ok(len.min(MAX_PAYLOAD_BYTES))
}

/// Decode one frame from the front of `bytes`, returning it together
/// with the number of bytes consumed. Extra bytes after the frame are
/// left for the caller (streams carry back-to-back frames).
pub fn decode_frame_prefix(bytes: &[u8]) -> Result<(Frame, usize), ProtoError> {
    let head = bytes.get(..HEADER_BYTES).ok_or(ProtoError::Truncated)?;
    let len = decode_header(head)?;
    let body_end = HEADER_BYTES.checked_add(len).ok_or(ProtoError::Truncated)?;
    let total = body_end
        .checked_add(CHECKSUM_BYTES)
        .ok_or(ProtoError::Truncated)?;
    let body = bytes.get(..body_end).ok_or(ProtoError::Truncated)?;
    if bytes.len() < total {
        return Err(ProtoError::Truncated);
    }
    let stored = decode_u64_at(bytes, body_end)?;
    if fnv64(body) != stored {
        return Err(ProtoError::Checksum);
    }
    let kind = *body.get(6).ok_or(ProtoError::Truncated)?;
    let payload = body.get(HEADER_BYTES..).ok_or(ProtoError::Truncated)?;
    Ok((
        Frame {
            kind,
            payload: payload.to_vec(),
        },
        total,
    ))
}

/// Decode a buffer that must hold exactly one frame.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, ProtoError> {
    let (frame, consumed) = decode_frame_prefix(bytes)?;
    let extra = bytes.len().saturating_sub(consumed);
    if extra != 0 {
        return Err(ProtoError::TrailingBytes(extra));
    }
    Ok(frame)
}

/// Read one checksum-verified frame from a stream.
///
/// The header is read and validated first, so a hostile declared length
/// errors before any payload-sized allocation. The subsequent allocation
/// is bounded by [`MAX_PAYLOAD_BYTES`] + [`CHECKSUM_BYTES`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtoError> {
    let raw = read_raw_frame(r)?;
    decode_frame(&raw)
}

/// Read one frame's raw bytes (header + payload + checksum) from a
/// stream *without* verifying the checksum. This is the chaos proxy's
/// read path: it must stay frame-aligned (header is still validated so
/// lengths are trusted-bounded) but forward damaged payloads verbatim —
/// corruption detection is the receiving endpoint's job.
pub fn read_raw_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, ProtoError> {
    let mut head = [0u8; HEADER_BYTES];
    r.read_exact(&mut head)?;
    let len = decode_header(&head)?;
    let rest_len = len
        .min(MAX_PAYLOAD_BYTES)
        .checked_add(CHECKSUM_BYTES)
        .ok_or(ProtoError::Truncated)?;
    let total = HEADER_BYTES
        .checked_add(rest_len)
        .ok_or(ProtoError::Truncated)?;
    let mut out = vec![0u8; total];
    let (front, rest) = out.split_at_mut(HEADER_BYTES);
    front.copy_from_slice(&head);
    r.read_exact(rest)?;
    Ok(out)
}

/// Write pre-encoded frame bytes to a stream.
pub fn write_frame_bytes<W: Write>(w: &mut W, bytes: &[u8]) -> Result<(), ProtoError> {
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_prefix_and_exact() {
        let frame_bytes = encode_frame(7, b"hello frames");
        let frame = decode_frame(&frame_bytes).unwrap();
        assert_eq!(frame.kind, 7);
        assert_eq!(frame.payload, b"hello frames");

        let mut two = frame_bytes.clone();
        two.extend_from_slice(&frame_bytes);
        let (first, consumed) = decode_frame_prefix(&two).unwrap();
        assert_eq!(first.kind, 7);
        assert_eq!(consumed, frame_bytes.len());
        let second = decode_frame(&two[consumed..]).unwrap();
        assert_eq!(second, first);
    }

    #[test]
    fn empty_payload_is_legal() {
        let bytes = encode_frame(3, &[]);
        assert_eq!(bytes.len(), HEADER_BYTES + CHECKSUM_BYTES);
        let frame = decode_frame(&bytes).unwrap();
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let clean = encode_frame(5, b"checksum covers header and payload");
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&dirty).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn hostile_length_errors_before_allocation() {
        // A 12-byte header claiming a 4 GiB payload must error with
        // Oversized, not attempt the allocation and fail later.
        let mut head = Vec::new();
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        head.push(1);
        head.push(0);
        head.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame_prefix(&head),
            Err(ProtoError::Oversized(u32::MAX as usize))
        );
        let mut cursor = std::io::Cursor::new(head);
        assert_eq!(
            read_raw_frame(&mut cursor),
            Err(ProtoError::Oversized(u32::MAX as usize))
        );
    }

    #[test]
    fn bad_magic_version_flags() {
        let clean = encode_frame(1, b"x");
        let mut bad_magic = clean.clone();
        bad_magic[0] = b'Z';
        assert_eq!(
            decode_frame(&bad_magic),
            Err(ProtoError::BadMagic(*b"ZCLP"))
        );

        let mut bad_version = clean.clone();
        bad_version[4] = 9;
        assert_eq!(decode_frame(&bad_version), Err(ProtoError::BadVersion(9)));

        let mut bad_flags = clean.clone();
        bad_flags[7] = 0x80;
        assert_eq!(decode_frame(&bad_flags), Err(ProtoError::BadFlags(0x80)));
    }

    #[test]
    fn trailing_bytes_rejected_by_exact_decode() {
        let mut bytes = encode_frame(1, b"x");
        bytes.push(0);
        assert_eq!(decode_frame(&bytes), Err(ProtoError::TrailingBytes(1)));
    }

    #[test]
    fn truncations_never_panic() {
        let clean = encode_frame(2, b"truncate me at every prefix");
        for cut in 0..clean.len() {
            assert!(decode_frame(&clean[..cut]).is_err());
        }
    }

    #[test]
    fn raw_read_skips_checksum_verification() {
        let mut bytes = encode_frame(4, b"damaged in flight");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // corrupt the checksum trailer
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let raw = read_raw_frame(&mut cursor).unwrap();
        assert_eq!(raw, bytes);
        // ...but the verifying decoder refuses the same bytes.
        assert_eq!(decode_frame(&raw), Err(ProtoError::Checksum));
    }
}
