//! The shared bounded-retry policy.
//!
//! Both transports retry the same way: the in-process fault-injecting
//! transport iterates [`RetryPolicy::attempts`] with *virtual* backoff
//! (no sleeping — simulated time would poison determinism), while the
//! network path sleeps for [`RetryPolicy::backoff`] between attempts.
//! Backoff jitter is **derived**, not drawn from the clock: attempt `a`
//! for `(round, client)` always jitters identically at a given seed, so
//! a chaos-proxy replay reproduces the exact retry schedule.

use fedclust_tensor::rng::{derive, streams};
use rand::Rng;
use std::time::Duration;

/// Bounded attempts + deterministic exponential backoff + optional
/// per-round deadline. `--retries N` means *N retries after the first
/// attempt*, i.e. `max_attempts = N + 1`, identically in-process and
/// over TCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (always >= 1).
    pub max_attempts: u32,
    /// Backoff unit: attempt `a > 0` waits ~`base * 2^(a-1)`, jittered.
    pub backoff_base: Duration,
    /// Exponent cap so backoff stops doubling at `base * 2^cap`.
    pub backoff_cap_exp: u32,
    /// Wall-clock budget for one round's worth of attempts. `None`
    /// means retries alone bound the work (the in-process transport
    /// never consults this — simulated rounds take no wall time).
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// Policy for `--retries N`: `N + 1` attempts, 50 ms backoff unit,
    /// exponent capped at 6 (so at most ~3.2 s between attempts), no
    /// deadline.
    pub fn from_retries(retries: u32) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            backoff_base: Duration::from_millis(50),
            backoff_cap_exp: 6,
            deadline: None,
        }
    }

    /// Replace the backoff unit (e.g. from `--backoff-base`).
    pub fn with_backoff_base(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// Set the per-round deadline (e.g. from `--round-timeout`).
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Attempt indices to iterate: `0..max_attempts`.
    pub fn attempts(&self) -> std::ops::Range<u32> {
        0..self.max_attempts
    }

    /// Number of *retries* (attempts beyond the first).
    pub fn retries(&self) -> u32 {
        self.max_attempts.saturating_sub(1)
    }

    /// Deterministic backoff before `attempt` (0-based). Attempt 0 is
    /// immediate; attempt `a > 0` waits `base * 2^min(a-1, cap)` scaled
    /// by a jitter factor in `[0.5, 1.5)` derived from
    /// `(seed, RETRY_BACKOFF, round, client, attempt)` so a worker
    /// fleet never retries in lock-step yet replays bit-identically.
    pub fn backoff(&self, seed: u64, round: u64, client: u64, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = (attempt - 1).min(self.backoff_cap_exp);
        let base_ms = self.backoff_base.as_millis() as u64;
        let scaled_ms = base_ms.saturating_mul(1u64 << exp.min(32));
        let mut rng = derive(
            seed,
            &[streams::RETRY_BACKOFF, round, client, attempt as u64],
        );
        let jitter = 0.5 + rng.gen::<f64>();
        Duration::from_millis((scaled_ms as f64 * jitter) as u64)
    }

    /// Has the per-round deadline passed after `elapsed`?
    pub fn expired(&self, elapsed: Duration) -> bool {
        match self.deadline {
            Some(deadline) => elapsed >= deadline,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_to_attempts_mapping() {
        assert_eq!(RetryPolicy::from_retries(0).max_attempts, 1);
        assert_eq!(RetryPolicy::from_retries(2).max_attempts, 3);
        assert_eq!(RetryPolicy::from_retries(2).retries(), 2);
        assert_eq!(RetryPolicy::from_retries(u32::MAX).max_attempts, u32::MAX);
        assert_eq!(
            RetryPolicy::from_retries(3).attempts().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn first_attempt_is_immediate() {
        let policy = RetryPolicy::from_retries(4);
        assert_eq!(policy.backoff(42, 1, 2, 0), Duration::ZERO);
    }

    #[test]
    fn backoff_is_deterministic_and_jittered_within_bounds() {
        let policy = RetryPolicy::from_retries(8);
        for attempt in 1..=8u32 {
            let a = policy.backoff(42, 3, 7, attempt);
            let b = policy.backoff(42, 3, 7, attempt);
            assert_eq!(a, b, "attempt {attempt} not deterministic");
            let exp = (attempt - 1).min(policy.backoff_cap_exp);
            let nominal = 50u64 << exp;
            let ms = a.as_millis() as u64;
            assert!(
                ms >= nominal / 2 && ms < nominal + nominal / 2 + 1,
                "attempt {attempt}: {ms} ms outside [{}, {})",
                nominal / 2,
                nominal + nominal / 2
            );
        }
    }

    #[test]
    fn different_clients_desynchronise() {
        let policy = RetryPolicy::from_retries(4);
        let delays: Vec<Duration> = (0..8u64).map(|c| policy.backoff(42, 1, c, 2)).collect();
        let distinct: std::collections::BTreeSet<_> = delays.iter().collect();
        assert!(
            distinct.len() > 4,
            "per-client jitter collapsed: {delays:?}"
        );
    }

    #[test]
    fn exponent_cap_holds() {
        let policy = RetryPolicy::from_retries(64);
        let late = policy.backoff(1, 0, 0, 64);
        // cap 6 → nominal 3200 ms, jitter < 1.5x.
        assert!(late < Duration::from_millis(4801), "{late:?}");
    }

    #[test]
    fn deadline_expiry() {
        let none = RetryPolicy::from_retries(1);
        assert!(!none.expired(Duration::from_secs(3600)));
        let tight = none.with_deadline(Some(Duration::from_millis(100)));
        assert!(!tight.expired(Duration::from_millis(99)));
        assert!(tight.expired(Duration::from_millis(100)));
    }
}
