//! Message layer: typed messages over [`crate::wire`] frames.
//!
//! Per-message payload layouts (all little-endian, offsets in bytes):
//!
//! ```text
//! Hello    (1): u16 version
//! Welcome  (2): u32 worker_id, u32 argc, argc × { u32 len, utf-8 bytes }
//! Reject   (3): u32 len, utf-8 bytes
//! PullWork (4): empty
//! Work     (5): u8 mode, u32 round, u32 client, u32 epochs,
//!               u8 has_prox, f32 prox_mu, vec_f32 state, vec_f32 residual
//! Wait     (6): u32 millis
//! Busy     (7): u32 millis
//! Push     (8): u8 mode, u32 round, u32 client, u32 steps, f32 weight,
//!               u8 encoding, raw: vec_f32 state
//!                            codec: bytes wire, vec_f32 residual
//! Ack      (9): u32 round, u32 client
//! Done    (10): empty
//! ```
//!
//! where `vec_f32` = `u32 count` + `count × f32` and `bytes` =
//! `u32 len` + `len` raw bytes. `Work` and `Push` deliberately place
//! `round` at payload offset 1 and `client` at offset 5 (and `Ack` at
//! 0/4) so the chaos proxy can key its per-frame fate draws on
//! `(round, client)` without a full decode — see [`frame_keys`].

use crate::wire::{self, Frame, ProtoError};
use std::io::{Read, Write};

/// Message kind bytes. Dense from 1; 0 is reserved as "never valid".
pub const KIND_HELLO: u8 = 1;
pub const KIND_WELCOME: u8 = 2;
pub const KIND_REJECT: u8 = 3;
pub const KIND_PULL_WORK: u8 = 4;
pub const KIND_WORK: u8 = 5;
pub const KIND_WAIT: u8 = 6;
pub const KIND_BUSY: u8 = 7;
pub const KIND_PUSH: u8 = 8;
pub const KIND_ACK: u8 = 9;
pub const KIND_DONE: u8 = 10;

/// `Work`/`Push` mode: a normal local-training round.
pub const MODE_TRAIN: u8 = 0;
/// `Work`/`Push` mode: FedClust round-0 warmup; the worker returns its
/// raw full state and the server extracts the partial-weight slice.
pub const MODE_WARMUP: u8 = 1;

/// Cap on f32 vector element counts (16 Mi elements = 64 MiB).
pub const MAX_VEC_ELEMS: usize = wire::MAX_PAYLOAD_BYTES / 4;
/// Cap on string field byte lengths.
pub const MAX_STR_BYTES: usize = 1 << 16;
/// Cap on `Welcome` argv entries.
pub const MAX_ARGV: usize = 128;

/// The update a worker pushes back: either the raw state vector
/// (codec "none" and warmup mode) or the codec wire bytes plus the
/// worker's updated error-feedback residual.
#[derive(Debug, Clone, PartialEq)]
pub enum PushBody {
    Raw(Vec<f32>),
    Encoded { wire: Vec<u8>, residual: Vec<f32> },
}

const ENCODING_RAW: u8 = 0;
const ENCODING_CODEC: u8 = 1;

/// Every message `fedclustd`, workers, and the chaos proxy exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → server, first frame on a connection.
    Hello { version: u16 },
    /// Server → worker: accepted; `argv` is the canonical `run`
    /// command line the worker replays to rebuild the identical
    /// dataset/config/model template locally.
    Welcome { worker_id: u32, argv: Vec<String> },
    /// Server → worker: handshake refused (version skew, bad state).
    Reject { reason: String },
    /// Worker → server: give me a unit of work.
    PullWork,
    /// Server → worker: train `client` at `round` from `state`.
    Work {
        mode: u8,
        round: u32,
        client: u32,
        epochs: u32,
        prox_mu: Option<f32>,
        state: Vec<f32>,
        residual: Vec<f32>,
    },
    /// Server → worker: nothing to do right now, poll again in
    /// `millis`.
    Wait { millis: u32 },
    /// Server → worker: backpressure — too many un-consumed uploads in
    /// flight; retry the *same* push after `millis`.
    Busy { millis: u32 },
    /// Worker → server: finished unit of work.
    Push {
        mode: u8,
        round: u32,
        client: u32,
        steps: u32,
        weight: f32,
        body: PushBody,
    },
    /// Server → worker: push accepted (idempotent; duplicates of an
    /// already-recorded `(round, client)` are acked and discarded).
    Ack { round: u32, client: u32 },
    /// Server → worker: run complete, disconnect.
    Done,
}

impl Msg {
    /// The frame kind byte for this message.
    pub fn kind(&self) -> u8 {
        match self {
            Msg::Hello { .. } => KIND_HELLO,
            Msg::Welcome { .. } => KIND_WELCOME,
            Msg::Reject { .. } => KIND_REJECT,
            Msg::PullWork => KIND_PULL_WORK,
            Msg::Work { .. } => KIND_WORK,
            Msg::Wait { .. } => KIND_WAIT,
            Msg::Busy { .. } => KIND_BUSY,
            Msg::Push { .. } => KIND_PUSH,
            Msg::Ack { .. } => KIND_ACK,
            Msg::Done => KIND_DONE,
        }
    }

    /// Encode into a complete frame (header + payload + checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        match self {
            Msg::Hello { version } => enc.put_u16(*version),
            Msg::Welcome { worker_id, argv } => {
                enc.put_u32(*worker_id);
                enc.put_u32(argv.len() as u32);
                for arg in argv {
                    enc.put_str(arg);
                }
            }
            Msg::Reject { reason } => enc.put_str(reason),
            Msg::PullWork | Msg::Done => {}
            Msg::Work {
                mode,
                round,
                client,
                epochs,
                prox_mu,
                state,
                residual,
            } => {
                enc.put_u8(*mode);
                enc.put_u32(*round);
                enc.put_u32(*client);
                enc.put_u32(*epochs);
                enc.put_u8(u8::from(prox_mu.is_some()));
                enc.put_f32(prox_mu.unwrap_or(0.0));
                enc.put_vec_f32(state);
                enc.put_vec_f32(residual);
            }
            Msg::Wait { millis } | Msg::Busy { millis } => enc.put_u32(*millis),
            Msg::Push {
                mode,
                round,
                client,
                steps,
                weight,
                body,
            } => {
                enc.put_u8(*mode);
                enc.put_u32(*round);
                enc.put_u32(*client);
                enc.put_u32(*steps);
                enc.put_f32(*weight);
                match body {
                    PushBody::Raw(state) => {
                        enc.put_u8(ENCODING_RAW);
                        enc.put_vec_f32(state);
                    }
                    PushBody::Encoded { wire, residual } => {
                        enc.put_u8(ENCODING_CODEC);
                        enc.put_bytes(wire);
                        enc.put_vec_f32(residual);
                    }
                }
            }
            Msg::Ack { round, client } => {
                enc.put_u32(*round);
                enc.put_u32(*client);
            }
        }
        wire::encode_frame(self.kind(), &enc.buf)
    }

    /// Decode a validated frame into a typed message. Total: hostile
    /// payloads produce [`ProtoError`], never a panic, and the payload
    /// must be consumed exactly (no trailing bytes).
    pub fn decode_frame(frame: &Frame) -> Result<Msg, ProtoError> {
        let mut dec = Dec::new(&frame.payload);
        let msg = match frame.kind {
            KIND_HELLO => Msg::Hello {
                version: dec.decode_u16()?,
            },
            KIND_WELCOME => {
                let worker_id = dec.decode_u32()?;
                let argc = dec.decode_u32()? as usize;
                if argc > MAX_ARGV {
                    return Err(ProtoError::ImplausibleCount(argc));
                }
                let mut argv = Vec::with_capacity(argc.min(MAX_ARGV));
                for _ in 0..argc.min(MAX_ARGV) {
                    argv.push(dec.decode_string()?);
                }
                Msg::Welcome { worker_id, argv }
            }
            KIND_REJECT => Msg::Reject {
                reason: dec.decode_string()?,
            },
            KIND_PULL_WORK => Msg::PullWork,
            KIND_WORK => {
                let mode = decode_mode(dec.decode_u8()?)?;
                let round = dec.decode_u32()?;
                let client = dec.decode_u32()?;
                let epochs = dec.decode_u32()?;
                let has_prox = dec.decode_u8()?;
                if has_prox > 1 {
                    return Err(ProtoError::BadField("has_prox"));
                }
                let prox_raw = dec.decode_f32()?;
                Msg::Work {
                    mode,
                    round,
                    client,
                    epochs,
                    prox_mu: (has_prox == 1).then_some(prox_raw),
                    state: dec.decode_vec_f32()?,
                    residual: dec.decode_vec_f32()?,
                }
            }
            KIND_WAIT => Msg::Wait {
                millis: dec.decode_u32()?,
            },
            KIND_BUSY => Msg::Busy {
                millis: dec.decode_u32()?,
            },
            KIND_PUSH => {
                let mode = decode_mode(dec.decode_u8()?)?;
                let round = dec.decode_u32()?;
                let client = dec.decode_u32()?;
                let steps = dec.decode_u32()?;
                let weight = dec.decode_f32()?;
                let encoding = dec.decode_u8()?;
                let body = match encoding {
                    ENCODING_RAW => PushBody::Raw(dec.decode_vec_f32()?),
                    ENCODING_CODEC => PushBody::Encoded {
                        wire: dec.decode_bytes()?,
                        residual: dec.decode_vec_f32()?,
                    },
                    _ => return Err(ProtoError::BadField("encoding")),
                };
                Msg::Push {
                    mode,
                    round,
                    client,
                    steps,
                    weight,
                    body,
                }
            }
            KIND_ACK => Msg::Ack {
                round: dec.decode_u32()?,
                client: dec.decode_u32()?,
            },
            KIND_DONE => Msg::Done,
            other => return Err(ProtoError::BadKind(other)),
        };
        dec.finish()?;
        Ok(msg)
    }
}

fn decode_mode(mode: u8) -> Result<u8, ProtoError> {
    if mode == MODE_TRAIN || mode == MODE_WARMUP {
        Ok(mode)
    } else {
        Err(ProtoError::BadField("mode"))
    }
}

/// Write one message to a stream as a frame.
pub fn write_msg<W: Write>(w: &mut W, msg: &Msg) -> Result<(), ProtoError> {
    wire::write_frame_bytes(w, &msg.encode())
}

/// Read one message from a stream (checksum-verified).
pub fn read_msg<R: Read>(r: &mut R) -> Result<Msg, ProtoError> {
    let frame = wire::read_frame(r)?;
    Msg::decode_frame(&frame)
}

/// Extract the `(round, client)` key from a raw frame's payload when
/// its kind carries one, without a full decode. Used by the chaos proxy
/// to key its deterministic fate draws. Returns `None` for kinds that
/// carry no key or payloads too short to hold one.
pub fn frame_keys(kind: u8, payload: &[u8]) -> Option<(u32, u32)> {
    let at = match kind {
        KIND_WORK | KIND_PUSH => 1usize,
        KIND_ACK => 0usize,
        _ => return None,
    };
    let round = read_u32_key(payload, at)?;
    let client = read_u32_key(payload, at.checked_add(4)?)?;
    Some((round, client))
}

fn read_u32_key(payload: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let slice = payload.get(at..end)?;
    let arr: [u8; 4] = slice.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Little-endian payload builder.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_vec_f32(&mut self, v: &[f32]) {
        assert!(v.len() <= MAX_VEC_ELEMS, "vector exceeds wire cap");
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_f32(x);
        }
    }
    fn put_bytes(&mut self, v: &[u8]) {
        assert!(v.len() <= wire::MAX_PAYLOAD_BYTES, "bytes exceed wire cap");
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn put_str(&mut self, s: &str) {
        assert!(s.len() <= MAX_STR_BYTES, "string exceeds wire cap");
        self.put_bytes(s.as_bytes());
    }
}

/// Little-endian payload cursor. All reads are `.get()`-based with
/// checked offset arithmetic; element counts are capped before any
/// count-derived allocation.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn decode_take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(ProtoError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn decode_u8(&mut self) -> Result<u8, ProtoError> {
        let slice = self.decode_take(1)?;
        Ok(*slice.first().ok_or(ProtoError::Truncated)?)
    }

    fn decode_u16(&mut self) -> Result<u16, ProtoError> {
        let slice = self.decode_take(2)?;
        let arr: [u8; 2] = slice.try_into().map_err(|_| ProtoError::Truncated)?;
        Ok(u16::from_le_bytes(arr))
    }

    fn decode_u32(&mut self) -> Result<u32, ProtoError> {
        let slice = self.decode_take(4)?;
        let arr: [u8; 4] = slice.try_into().map_err(|_| ProtoError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }

    fn decode_f32(&mut self) -> Result<f32, ProtoError> {
        let slice = self.decode_take(4)?;
        let arr: [u8; 4] = slice.try_into().map_err(|_| ProtoError::Truncated)?;
        Ok(f32::from_le_bytes(arr))
    }

    /// `u32 count` + `count × f32`. The count is capped *before* the
    /// byte take, so a hostile count errors without allocating; the
    /// resulting Vec's size is bounded by the actual payload bytes.
    fn decode_vec_f32(&mut self) -> Result<Vec<f32>, ProtoError> {
        let n = self.decode_u32()? as usize;
        if n > MAX_VEC_ELEMS {
            return Err(ProtoError::ImplausibleCount(n));
        }
        let byte_len = n
            .min(MAX_VEC_ELEMS)
            .checked_mul(4)
            .ok_or(ProtoError::Truncated)?;
        let bytes = self.decode_take(byte_len)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| {
                let arr: [u8; 4] = c.try_into().unwrap_or_default();
                f32::from_le_bytes(arr)
            })
            .collect())
    }

    /// `u32 len` + `len` raw bytes, capped at the frame payload cap.
    fn decode_bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let n = self.decode_u32()? as usize;
        if n > wire::MAX_PAYLOAD_BYTES {
            return Err(ProtoError::ImplausibleCount(n));
        }
        let bytes = self.decode_take(n.min(wire::MAX_PAYLOAD_BYTES))?;
        Ok(bytes.to_vec())
    }

    fn decode_string(&mut self) -> Result<String, ProtoError> {
        let n = self.decode_u32()? as usize;
        if n > MAX_STR_BYTES {
            return Err(ProtoError::ImplausibleCount(n));
        }
        let bytes = self.decode_take(n.min(MAX_STR_BYTES))?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    /// Every decoder must consume the payload exactly; leftovers mean a
    /// peer speaking a different (perhaps future) layout.
    fn finish(&self) -> Result<(), ProtoError> {
        let extra = self.buf.len().saturating_sub(self.pos);
        if extra != 0 {
            return Err(ProtoError::TrailingBytes(extra));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode_frame;

    fn roundtrip(msg: &Msg) -> Msg {
        let bytes = msg.encode();
        let frame = decode_frame(&bytes).unwrap();
        assert_eq!(frame.kind, msg.kind());
        Msg::decode_frame(&frame).unwrap()
    }

    #[test]
    fn all_variants_roundtrip() {
        let msgs = vec![
            Msg::Hello { version: 1 },
            Msg::Welcome {
                worker_id: 3,
                argv: vec!["run".into(), "--seed".into(), "42".into()],
            },
            Msg::Reject {
                reason: "version skew".into(),
            },
            Msg::PullWork,
            Msg::Work {
                mode: MODE_TRAIN,
                round: 4,
                client: 17,
                epochs: 3,
                prox_mu: Some(0.01),
                state: vec![1.0, -2.5, 0.0],
                residual: vec![0.125],
            },
            Msg::Work {
                mode: MODE_WARMUP,
                round: 0,
                client: 2,
                epochs: 1,
                prox_mu: None,
                state: vec![],
                residual: vec![],
            },
            Msg::Wait { millis: 50 },
            Msg::Busy { millis: 120 },
            Msg::Push {
                mode: MODE_TRAIN,
                round: 4,
                client: 17,
                steps: 12,
                weight: 80.0,
                body: PushBody::Encoded {
                    wire: vec![9, 8, 7],
                    residual: vec![0.5, -0.5],
                },
            },
            Msg::Push {
                mode: MODE_WARMUP,
                round: 0,
                client: 2,
                steps: 5,
                weight: 10.0,
                body: PushBody::Raw(vec![3.0, 4.0]),
            },
            Msg::Ack {
                round: 4,
                client: 17,
            },
            Msg::Done,
        ];
        for msg in &msgs {
            assert_eq!(&roundtrip(msg), msg);
        }
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let mut buf = Vec::new();
        let work = Msg::Work {
            mode: MODE_TRAIN,
            round: 1,
            client: 2,
            epochs: 3,
            prox_mu: None,
            state: vec![1.0],
            residual: vec![],
        };
        write_msg(&mut buf, &work).unwrap();
        write_msg(&mut buf, &Msg::Done).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_msg(&mut cursor), Ok(work));
        assert_eq!(read_msg(&mut cursor), Ok(Msg::Done));
        // Stream exhausted → clean EOF error, not a panic.
        assert_eq!(
            read_msg(&mut cursor),
            Err(ProtoError::Io(std::io::ErrorKind::UnexpectedEof))
        );
    }

    #[test]
    fn frame_keys_pinned_offsets() {
        // The chaos proxy depends on these exact payload offsets; a
        // layout change must show up here, not as silent mis-keying.
        for msg in [
            Msg::Work {
                mode: MODE_TRAIN,
                round: 7,
                client: 13,
                epochs: 1,
                prox_mu: None,
                state: vec![],
                residual: vec![],
            },
            Msg::Push {
                mode: MODE_TRAIN,
                round: 7,
                client: 13,
                steps: 1,
                weight: 1.0,
                body: PushBody::Raw(vec![]),
            },
            Msg::Ack {
                round: 7,
                client: 13,
            },
        ] {
            let frame = decode_frame(&msg.encode()).unwrap();
            assert_eq!(
                frame_keys(frame.kind, &frame.payload),
                Some((7, 13)),
                "kind {} lost its (round, client) key",
                frame.kind
            );
        }
        let hello = decode_frame(&Msg::Hello { version: 1 }.encode()).unwrap();
        assert_eq!(frame_keys(hello.kind, &hello.payload), None);
        assert_eq!(frame_keys(KIND_WORK, &[0, 1]), None); // too short
    }

    #[test]
    fn hostile_fields_error_not_panic() {
        // Unknown kind.
        let frame = Frame {
            kind: 99,
            payload: vec![],
        };
        assert_eq!(Msg::decode_frame(&frame), Err(ProtoError::BadKind(99)));

        // Bad mode byte in Work.
        let bytes = Msg::Work {
            mode: MODE_TRAIN,
            round: 0,
            client: 0,
            epochs: 1,
            prox_mu: None,
            state: vec![],
            residual: vec![],
        }
        .encode();
        let mut work = decode_frame(&bytes).unwrap();
        work.payload[0] = 2;
        assert_eq!(Msg::decode_frame(&work), Err(ProtoError::BadField("mode")));

        // Hostile vector count in Push: claims u32::MAX elements.
        let mut payload = vec![MODE_TRAIN];
        payload.extend_from_slice(&0u32.to_le_bytes()); // round
        payload.extend_from_slice(&0u32.to_le_bytes()); // client
        payload.extend_from_slice(&1u32.to_le_bytes()); // steps
        payload.extend_from_slice(&1.0f32.to_le_bytes()); // weight
        payload.push(ENCODING_RAW);
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        let frame = Frame {
            kind: KIND_PUSH,
            payload,
        };
        assert_eq!(
            Msg::decode_frame(&frame),
            Err(ProtoError::ImplausibleCount(u32::MAX as usize))
        );

        // Trailing garbage after a well-formed Ack.
        let mut ack = decode_frame(
            &Msg::Ack {
                round: 1,
                client: 2,
            }
            .encode(),
        )
        .unwrap();
        ack.payload.push(0xAB);
        assert_eq!(Msg::decode_frame(&ack), Err(ProtoError::TrailingBytes(1)));

        // Non-UTF-8 reject reason.
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xff, 0xfe]);
        let frame = Frame {
            kind: KIND_REJECT,
            payload,
        };
        assert_eq!(Msg::decode_frame(&frame), Err(ProtoError::BadUtf8));
    }

    #[test]
    fn welcome_argv_cap_enforced() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes()); // worker_id
        payload.extend_from_slice(&(MAX_ARGV as u32 + 1).to_le_bytes());
        let frame = Frame {
            kind: KIND_WELCOME,
            payload,
        };
        assert_eq!(
            Msg::decode_frame(&frame),
            Err(ProtoError::ImplausibleCount(MAX_ARGV + 1))
        );
    }
}
