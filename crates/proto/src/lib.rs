//! `fedclust-proto`: the wire protocol spoken between `fedclustd` and its
//! worker processes, plus the shared bounded-retry policy used by both the
//! in-process fault-injecting transport and the real network path.
//!
//! Design constraints, in order:
//!
//! 1. **Total decoding.** Every byte sequence fed to the decoder either
//!    yields a message or a typed [`ProtoError`] — never a panic, and never
//!    an allocation larger than [`wire::MAX_PAYLOAD_BYTES`] plus constant
//!    overhead. All reads are `.get()`-based, all length arithmetic is
//!    checked, mirroring the checkpoint codec discipline.
//! 2. **Determinism.** Nothing in this crate draws wall-clock entropy. The
//!    retry backoff jitter derives from
//!    `(seed, streams::RETRY_BACKOFF, round, client, attempt)` so a fleet
//!    of workers retries on a reproducible schedule.
//! 3. **Wire honesty.** Payload layouts are explicit little-endian byte
//!    formats (documented per message) so `CommMeter` charges can be pinned
//!    against actual frame sizes in tests.

pub mod msg;
pub mod retry;
pub mod wire;

pub use msg::{
    frame_keys, read_msg, write_msg, Msg, PushBody, MAX_ARGV, MAX_STR_BYTES, MAX_VEC_ELEMS,
    MODE_TRAIN, MODE_WARMUP,
};
pub use retry::RetryPolicy;
pub use wire::{
    decode_frame, decode_frame_prefix, encode_frame, read_frame, read_raw_frame, Frame, ProtoError,
    CHECKSUM_BYTES, HEADER_BYTES, MAGIC, MAX_PAYLOAD_BYTES, PROTO_VERSION,
};
